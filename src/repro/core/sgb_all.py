"""SGB-All: similarity group-by under the *distance-to-all* semantics (§6).

Every output group is a clique under the similarity predicate: each member
is within ``ε`` of **all** other members.  A point may qualify for several
groups; the ``ON-OVERLAP`` clause arbitrates:

* ``join-any`` — insert into one (randomly or first-created) candidate group;
* ``eliminate`` — drop the point, and drop existing members that partially
  overlap the new point's neighbourhood (Procedure ProcessOverlap);
* ``form-new-group`` — defer the point (and partially-overlapping members
  pulled from their groups) to a temporary set ``S'`` and re-run SGB-All on
  ``S'`` recursively until it is empty.

Three interchangeable strategies realize ``FindCloseGroups``:

* :class:`AllPairsStrategy` — Procedure 2, O(n²) member scans;
* :class:`BoundsCheckingStrategy` — Procedure 4, ε-All rectangle test per
  group (exact for L∞, + convex-hull refinement for 2-D L2);
* :class:`IndexedStrategy` — Procedure 5, an R-tree window query over group
  MBRs replaces the linear scan of groups.

All three produce the same grouping for the same input order (JOIN-ANY with
``tiebreak="first"``; ELIMINATE and FORM-NEW-GROUP are deterministic), which
the property-based tests exploit.
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro import kernels
from repro.core.distance import Metric, resolve_metric
from repro.core.groups import Group, GroupRegistry
from repro.core.result import ELIMINATED, GroupingResult
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree
from repro.obs.metrics import MetricBag
from repro.obs.trace import Tracer, maybe_span

Point = Tuple[float, ...]

#: Canonical ON-OVERLAP clause spellings (SQL accepts hyphen/underscore).
JOIN_ANY = "join-any"
ELIMINATE_CLAUSE = "eliminate"
FORM_NEW_GROUP = "form-new-group"
_OVERLAP_CLAUSES = (JOIN_ANY, ELIMINATE_CLAUSE, FORM_NEW_GROUP)


def normalize_overlap(clause: str) -> str:
    c = clause.strip().lower().replace("_", "-")
    if c in ("join-any", "joinany"):
        return JOIN_ANY
    if c == "eliminate":
        return ELIMINATE_CLAUSE
    if c in ("form-new-group", "form-new", "formnewgroup", "new-group"):
        return FORM_NEW_GROUP
    raise InvalidParameterError(
        f"unknown ON-OVERLAP clause {clause!r}; expected one of {_OVERLAP_CLAUSES}"
    )


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
class _StrategyBase:
    """Owns the live groups and keeps auxiliary structures in sync.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricBag` or None) is set by
    the owning operator; strategies count ``index_probes`` (FindCloseGroups
    invocations — true window queries for :class:`IndexedStrategy`) and
    ``candidates`` (raw entries examined before exact verification) into it.
    """

    name = "abstract"

    def __init__(self, eps: float, metric: Metric, use_hull: bool):
        self.eps = eps
        self.metric = metric
        self.use_hull = use_hull
        self.registry = GroupRegistry()
        self.metrics: Optional[MetricBag] = None

    # -- FindCloseGroups -------------------------------------------------
    def find_close_groups(
        self, point: Point, need_overlap: bool
    ) -> Tuple[List[Group], List[Group]]:
        raise NotImplementedError

    # -- mutations ---------------------------------------------------------
    def create_group(self, point_id: int, point: Point) -> Group:
        g = self.registry.new_group(self.eps, self.metric, self.use_hull)
        g.add(point_id, point)
        self._index_insert(g)
        return g

    def add_member(self, group: Group, point_id: int, point: Point) -> None:
        old_mbr = group.mbr
        group.add(point_id, point)
        self._index_moved(group, old_mbr)

    def remove_members(self, group: Group, point_ids: Iterable[int]) -> None:
        old_mbr = group.mbr
        group.remove_members(point_ids)
        if not group.member_ids:
            self._index_delete(group, old_mbr)
            self.registry.drop(group.gid)
        else:
            self._index_moved(group, old_mbr)

    # -- index hooks (no-ops unless the strategy maintains one) -----------
    def _index_insert(self, group: Group) -> None:
        pass

    def _index_moved(self, group: Group, old_mbr: Optional[Rect]) -> None:
        pass

    def _index_delete(self, group: Group, old_mbr: Optional[Rect]) -> None:
        pass


class AllPairsStrategy(_StrategyBase):
    """Naive FindCloseGroups (Procedure 2): scan every member of every group."""

    name = "all-pairs"

    def find_close_groups(
        self, point: Point, need_overlap: bool
    ) -> Tuple[List[Group], List[Group]]:
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(self.registry))
        candidates: List[Group] = []
        overlaps: List[Group] = []
        for g in self.registry:
            candidate, overlap = g.scan_flags(point, need_overlap)
            if candidate:
                candidates.append(g)
            elif need_overlap and overlap:
                overlaps.append(g)
        return candidates, overlaps


#: Live-group count below which the bulk rectangle pass loses to the
#: plain per-group loop (array setup overhead over a handful of groups).
_VECTOR_MIN_GROUPS = 16


class BoundsCheckingStrategy(_StrategyBase):
    """Procedure 4: ε-All rectangle test per group, linear scan of groups.

    The 2-D scan is hand-unrolled: the per-group work is two closed-box
    tests, and doing them on raw corner tuples (no method dispatch) is what
    keeps this strategy ahead of All-Pairs at bench sizes, matching the
    paper's ordering.

    Under the numpy backend the per-group rectangle tests become two bulk
    array comparisons over a slotted :class:`~repro.kernels.numpy_backend.
    RectStore` (ε-All containment for candidates, MBR intersection for
    overlap groups), kept in sync through the strategy's index hooks.
    """

    name = "bounds-checking"

    def __init__(self, eps: float, metric: Metric, use_hull: bool):
        super().__init__(eps, metric, use_hull)
        self._rects = None
        self._rects_ready = False

    # -- rect-store maintenance (via the _StrategyBase mutation hooks) ---
    def _index_insert(self, group: Group) -> None:
        if not self._rects_ready:
            assert group.mbr is not None
            self._rects = kernels.make_rect_store(group.mbr.dim)
            self._rects_ready = True
        if self._rects is not None:
            self._rects.set(group.gid, group.eps_rect, group.mbr)

    def _index_moved(self, group: Group, old_mbr: Optional[Rect]) -> None:
        if self._rects is not None:
            self._rects.set(group.gid, group.eps_rect, group.mbr)

    def _index_delete(self, group: Group, old_mbr: Optional[Rect]) -> None:
        if self._rects is not None:
            self._rects.delete(group.gid)

    def find_close_groups(
        self, point: Point, need_overlap: bool
    ) -> Tuple[List[Group], List[Group]]:
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(self.registry))
        if (
            self._rects is not None
            and len(self.registry) >= _VECTOR_MIN_GROUPS
        ):
            return self._find_vectorized(point, need_overlap)
        if len(point) == 2:
            return self._find_2d(point, need_overlap)
        candidates: List[Group] = []
        overlaps: List[Group] = []
        window = Rect.eps_box(point, self.eps) if need_overlap else None
        for g in self.registry:
            if g.accepts(point):
                candidates.append(g)
            elif (
                window is not None
                and g.mbr is not None
                and window.intersects(g.mbr)
                and g.any_within(point)
            ):
                overlaps.append(g)
        return candidates, overlaps

    def _find_2d(
        self, point: Point, need_overlap: bool
    ) -> Tuple[List[Group], List[Group]]:
        candidates: List[Group] = []
        overlaps: List[Group] = []
        x, y = point
        eps = self.eps
        wlo0, wlo1 = x - eps, y - eps
        whi0, whi1 = x + eps, y + eps
        exact = self.metric.name == "linf"
        for g in self.registry:
            rect = g.eps_rect
            lo = rect.lo
            hi = rect.hi
            if lo[0] <= x <= hi[0] and lo[1] <= y <= hi[1]:
                if exact or g.refine(point):
                    candidates.append(g)
                    continue
                # an L2 false positive may still partially overlap
            if need_overlap:
                mbr = g.mbr
                mlo = mbr.lo
                mhi = mbr.hi
                if (mlo[0] <= whi0 and wlo0 <= mhi[0]
                        and mlo[1] <= whi1 and wlo1 <= mhi[1]
                        and g.any_within(point)):
                    overlaps.append(g)
        return candidates, overlaps

    def _find_vectorized(
        self, point: Point, need_overlap: bool
    ) -> Tuple[List[Group], List[Group]]:
        """Bulk rectangle filters over every live group at once.

        Results are ordered by group id — identical to the linear scan,
        which walks the registry in creation order — so JOIN-ANY
        tiebreaks (random *and* first) see the same candidate lists as
        the pure-python path.
        """
        assert self._rects is not None
        registry = self.registry
        exact = self.metric.name == "linf"
        candidates: List[Group] = []
        accepted = set()
        for gid in sorted(self._rects.eps_contains(point)):
            g = registry.get(gid)
            if exact or g.refine(point):
                candidates.append(g)
                accepted.add(gid)
            # an L2 false positive may still partially overlap: it stays
            # eligible for the MBR-intersection pass below
        overlaps: List[Group] = []
        if need_overlap:
            window = Rect.eps_box(point, self.eps)
            for gid in sorted(
                self._rects.mbr_intersects(window.lo, window.hi)
            ):
                if gid in accepted:
                    continue
                g = registry.get(gid)
                if g.any_within(point):
                    overlaps.append(g)
        return candidates, overlaps


class IndexedStrategy(_StrategyBase):
    """Procedure 5: on-the-fly R-tree over group MBRs.

    A window query with the point's ε-box returns every group that could be
    a candidate *or* an overlap group (a member within ε of the point lies
    inside the ε-box, hence the group MBR intersects it), so only returned
    groups are tested.
    """

    name = "index"

    def __init__(
        self,
        eps: float,
        metric: Metric,
        use_hull: bool,
        rtree_max_entries: int = 8,
    ):
        super().__init__(eps, metric, use_hull)
        self._rtree = RTree(max_entries=rtree_max_entries)

    def find_close_groups(
        self, point: Point, need_overlap: bool
    ) -> Tuple[List[Group], List[Group]]:
        candidates: List[Group] = []
        overlaps: List[Group] = []
        window = Rect.eps_box(point, self.eps)
        hits = self._rtree.search(window)
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(hits))
        for gid in hits:
            g = self.registry.get(gid)
            if g.accepts(point):
                candidates.append(g)
            elif need_overlap and g.any_within(point):
                overlaps.append(g)
        # Window queries return groups in tree order; keep results stable by
        # creation id so all strategies agree under deterministic tiebreaks.
        candidates.sort(key=lambda g: g.gid)
        overlaps.sort(key=lambda g: g.gid)
        return candidates, overlaps

    def _index_insert(self, group: Group) -> None:
        assert group.mbr is not None
        self._rtree.insert(group.mbr, group.gid)

    def _index_moved(self, group: Group, old_mbr: Optional[Rect]) -> None:
        assert group.mbr is not None and old_mbr is not None
        if group.mbr != old_mbr:
            self._rtree.update(old_mbr, group.mbr, group.gid)

    def _index_delete(self, group: Group, old_mbr: Optional[Rect]) -> None:
        assert old_mbr is not None
        self._rtree.delete(old_mbr, group.gid)


_STRATEGIES = {
    "all-pairs": AllPairsStrategy,
    "allpairs": AllPairsStrategy,
    "naive": AllPairsStrategy,
    "bounds-checking": BoundsCheckingStrategy,
    "bounds": BoundsCheckingStrategy,
    "index": IndexedStrategy,
    "indexed": IndexedStrategy,
    "rtree": IndexedStrategy,
}


# ----------------------------------------------------------------------
# the operator
# ----------------------------------------------------------------------
class SGBAllOperator:
    """Streaming SGB-All operator (Procedure 1).

    Feed points with :meth:`add` (or construct via
    :func:`repro.core.api.sgb_all`), then call :meth:`finalize` to obtain a
    :class:`~repro.core.result.GroupingResult`.  FORM-NEW-GROUP performs its
    recursive re-grouping of the deferred set inside ``finalize``.

    Parameters
    ----------
    eps:
        Similarity threshold ``ε >= 0`` (``0`` degenerates to equality
        grouping, i.e. the standard GROUP BY).
    metric:
        ``"l2"``, ``"linf"``, or a :class:`~repro.core.distance.Metric`.
    on_overlap:
        ``"join-any"`` | ``"eliminate"`` | ``"form-new-group"``.
    strategy:
        ``"all-pairs"`` | ``"bounds-checking"`` | ``"index"``.
    tiebreak:
        JOIN-ANY arbitration: ``"random"`` (paper semantics, seeded) or
        ``"first"`` (deterministic lowest group id; used to compare
        strategies).
    use_hull:
        Enable the §6.4 convex-hull refinement for 2-D L2 (ignored for L∞).
        Disabling it falls back to exact member scans after the rectangle
        filter — still correct, benchmarked as an ablation.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricBag`.  When given, the
        operator counts the shared SGB counter fields (``points``,
        ``groups_created``, ``eliminated``, ``deferred``, ``groups_dropped``,
        ``index_probes``, ``candidates``, ``distance_computations``) into
        it, wrapping the metric in a CountingMetric if needed.  Default
        None: zero instrumentation overhead.
    """

    def __init__(
        self,
        eps: float,
        metric: Union[str, Metric] = "l2",
        on_overlap: str = JOIN_ANY,
        strategy: str = "index",
        tiebreak: str = "random",
        seed: int = 0,
        rtree_max_entries: int = 8,
        use_hull: bool = True,
        max_recursion: Optional[int] = None,
        count_distance_computations: bool = False,
        metrics: Optional[MetricBag] = None,
        tracer: Optional[Tracer] = None,
    ):
        if eps < 0:
            raise InvalidParameterError(f"eps must be non-negative, got {eps}")
        self.eps = float(eps)
        self.metric = resolve_metric(metric)
        self.metrics = metrics
        self.tracer = tracer
        if count_distance_computations or metrics is not None:
            from repro.core.stats import CountingMetric

            if not hasattr(self.metric, "calls"):
                self.metric = CountingMetric(self.metric)
        self.on_overlap = normalize_overlap(on_overlap)
        if tiebreak not in ("random", "first"):
            raise InvalidParameterError(
                f"tiebreak must be 'random' or 'first', got {tiebreak!r}"
            )
        self.tiebreak = tiebreak
        self.max_recursion = max_recursion
        self._rng = random.Random(seed)
        self._rtree_max_entries = rtree_max_entries
        self._use_hull_opt = use_hull
        try:
            self._strategy_cls = _STRATEGIES[strategy.strip().lower()]
        except KeyError:
            raise InvalidParameterError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{sorted(set(_STRATEGIES))}"
            ) from None

        self._points: List[Point] = []
        self._dim: Optional[int] = None
        self._eliminated: Set[int] = set()
        self._deferred: List[int] = []
        self._strategy: Optional[_StrategyBase] = None
        self._finished_registries: List[GroupRegistry] = []
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def strategy_name(self) -> str:
        return self._strategy_cls.name

    @property
    def distance_computations(self) -> int:
        """Similarity-predicate evaluations so far (requires
        ``count_distance_computations=True``)."""
        calls = getattr(self.metric, "calls", None)
        if calls is None:
            raise RuntimeError(
                "construct the operator with count_distance_computations="
                "True to collect this statistic"
            )
        return calls

    def _make_strategy(self) -> _StrategyBase:
        use_hull = (
            self._use_hull_opt
            and self.metric.name != "linf"
            and self._dim == 2
        )
        if self._strategy_cls is IndexedStrategy:
            strat: _StrategyBase = IndexedStrategy(
                self.eps, self.metric, use_hull, self._rtree_max_entries
            )
        else:
            strat = self._strategy_cls(self.eps, self.metric, use_hull)
        strat.metrics = self.metrics
        return strat

    # ------------------------------------------------------------------
    def add(self, point: Sequence[float]) -> None:
        """Process one input tuple's grouping attributes."""
        if self._finalized:
            raise RuntimeError("operator already finalized")
        pt = tuple(float(v) for v in point)
        if self._dim is None:
            self._dim = len(pt)
            if self._dim < 1:
                raise InvalidParameterError("points must have >= 1 dimension")
            self._strategy = self._make_strategy()
        elif len(pt) != self._dim:
            raise DimensionMismatchError(
                f"point dimension {len(pt)} != {self._dim}"
            )
        pid = len(self._points)
        self._points.append(pt)
        assert self._strategy is not None
        if self.metrics is not None:
            self.metrics.incr("points")
        self._process_point(self._strategy, pid, self._deferred)

    def add_many(self, points: Iterable[Sequence[float]]) -> "SGBAllOperator":
        with maybe_span(self.tracer, "ingest",
                        strategy=self.strategy_name,
                        on_overlap=self.on_overlap) as sp:
            n0 = len(self._points)
            for p in points:
                self.add(p)
            sp.set(points=len(self._points) - n0)
        return self

    # ------------------------------------------------------------------
    def _process_point(
        self, strat: _StrategyBase, pid: int, deferred_out: List[int]
    ) -> None:
        """One iteration of Procedure 1 for point ``pid``."""
        point = self._points[pid]
        need_overlap = self.on_overlap != JOIN_ANY
        bag = self.metrics
        if bag is not None:
            t0 = time.perf_counter()
            candidates, overlaps = strat.find_close_groups(point, need_overlap)
            bag.observe("probe_latency", time.perf_counter() - t0)
        else:
            candidates, overlaps = strat.find_close_groups(point, need_overlap)

        # -- ProcessGroupingALL (Procedure 3) --------------------------
        if not candidates:
            strat.create_group(pid, point)
            if bag is not None:
                bag.incr("groups_created")
        elif len(candidates) == 1:
            strat.add_member(candidates[0], pid, point)
        elif self.on_overlap == JOIN_ANY:
            chosen = (
                self._rng.choice(candidates)
                if self.tiebreak == "random"
                else candidates[0]  # already sorted by gid
            )
            strat.add_member(chosen, pid, point)
        elif self.on_overlap == ELIMINATE_CLAUSE:
            self._eliminated.add(pid)
            if bag is not None:
                bag.incr("eliminated")
        else:  # FORM-NEW-GROUP: defer to S'
            deferred_out.append(pid)
            if bag is not None:
                bag.incr("deferred")

        # -- ProcessOverlap --------------------------------------------
        if need_overlap and overlaps:
            for g in overlaps:
                doomed = g.members_within(point)
                if not doomed:
                    continue
                if bag is not None and len(doomed) == len(g.member_ids):
                    bag.incr("groups_dropped")
                strat.remove_members(g, doomed)
                if self.on_overlap == ELIMINATE_CLAUSE:
                    self._eliminated.update(doomed)
                    if bag is not None:
                        bag.incr("eliminated", len(doomed))
                else:
                    deferred_out.extend(doomed)
                    if bag is not None:
                        bag.incr("deferred", len(doomed))

    # ------------------------------------------------------------------
    def finalize(self) -> GroupingResult:
        """Close the input stream and return the grouping.

        For FORM-NEW-GROUP this runs the recursive re-grouping of the
        deferred set ``S'`` (a fresh SGB-All pass per recursion level) until
        ``S'`` is empty.  A no-progress level (possible only in adversarial
        configurations) degrades gracefully to singleton groups, which is
        consistent with the clause's "create a new group for this tuple"
        intent and guarantees termination.
        """
        if self._finalized:
            raise RuntimeError("operator already finalized")
        self._finalized = True
        if self._strategy is not None:
            self._finished_registries.append(self._strategy.registry)

        with maybe_span(self.tracer, "finalize",
                        points=len(self._points)) as fin:
            pending = self._deferred
            depth = 0
            while pending:
                if (self.max_recursion is not None
                        and depth >= self.max_recursion):
                    self._force_singletons(pending)
                    break
                strat = self._make_strategy()
                next_deferred: List[int] = []
                # Each FORM-NEW-GROUP recursion level is its own strategy
                # phase — one span per re-grouping pass over S'.
                with maybe_span(self.tracer, "regroup", depth=depth,
                                pending=len(pending)):
                    for pid in pending:
                        self._process_point(strat, pid, next_deferred)
                self._finished_registries.append(strat.registry)
                if sorted(next_deferred) == sorted(pending):
                    # No progress is possible; make each remaining point its
                    # own group rather than looping forever.
                    self._drop_registry_assignments(strat.registry)
                    self._finished_registries.pop()
                    self._force_singletons(pending)
                    break
                pending = next_deferred
                depth += 1
            fin.set(regroup_passes=depth)

        labels = [ELIMINATED] * len(self._points)
        next_label = 0
        for registry in self._finished_registries:
            for g in sorted(registry, key=lambda g: g.gid):
                for pid in g.member_ids:
                    labels[pid] = next_label
                next_label += 1
        if self.metrics is not None:
            # The CountingMetric tally is cumulative; publish it once the
            # stream closes so the bag carries the final figure.
            self.metrics.incr(
                "distance_computations", getattr(self.metric, "calls", 0)
            )
        # Eliminated points stay -1; sanity: they were never assigned above.
        return GroupingResult(labels, self._points)

    def _force_singletons(self, pids: Iterable[int]) -> None:
        strat = self._make_strategy()
        registry = strat.registry
        for pid in pids:
            g = registry.new_group(self.eps, self.metric, False)
            g.add(pid, self._points[pid])
            if self.metrics is not None:
                self.metrics.incr("groups_created")
        self._finished_registries.append(registry)

    @staticmethod
    def _drop_registry_assignments(registry: GroupRegistry) -> None:
        for g in registry:
            g.member_ids.clear()
            g.points.clear()
