"""Per-partition RNG seeding for random JOIN-ANY arbitration.

Regression: every partition used to be handed ``config.seed`` verbatim, so
with ``tiebreak='random'`` all partitions replayed the identical random
stream — partitions holding the same point set always made the same
JOIN-ANY choices.  Seeds are now derived per partition key, which must (a)
decorrelate partitions and (b) stay reproducible run-to-run.
"""

from repro import Database

# Each partition holds the same 1-D triple {0, 3, 1.5} with eps=2: the ends
# are 3 apart (two separate groups) and the middle point overlaps both, so
# JOIN-ANY flips an independent coin per partition.
N_PARTITIONS = 12

SQL = (
    "SELECT region, count(*) FROM pts GROUP BY x "
    "DISTANCE-TO-ALL L2 WITHIN 2 ON-OVERLAP JOIN-ANY "
    "PARTITION BY region"
)


def _build(seed: int) -> Database:
    db = Database(tiebreak="random", seed=seed)
    db.execute("CREATE TABLE pts (region text, x float)")
    values = ", ".join(
        f"('p{i:02d}', {x})"
        for i in range(N_PARTITIONS)
        for x in (0.0, 3.0, 1.5)
    )
    db.execute(f"INSERT INTO pts VALUES {values}")
    return db


def _choices(db: Database):
    """Per-partition group-size vectors, revealing each JOIN-ANY choice."""
    out = {}
    for region, count in db.query(SQL).rows:
        out.setdefault(region, []).append(count)
    return out


class TestPerPartitionSeed:
    def test_partitions_with_identical_points_are_decorrelated(self):
        choices = _choices(_build(seed=0))
        assert len(choices) == N_PARTITIONS
        assert all(sorted(v) == [1, 2] for v in choices.values())
        # Before the fix every partition replayed the same stream, making
        # all 12 vectors identical.  Independent coins agree 12 times with
        # probability 2^-11, so distinct outcomes must appear.
        assert len({tuple(v) for v in choices.values()}) > 1

    def test_results_reproducible_run_to_run(self):
        assert _choices(_build(seed=7)) == _choices(_build(seed=7))

    def test_seed_changes_the_arbitration(self):
        runs = {tuple(sorted((k, tuple(v)) for k, v in
                            _choices(_build(seed=s)).items()))
                for s in range(6)}
        assert len(runs) > 1

    def test_unpartitioned_query_uses_base_seed(self):
        # Without PARTITION BY the derivation must leave the configured
        # seed untouched (single partition, pkey == ()).
        for _ in range(2):
            db = Database(tiebreak="random", seed=3)
            db.execute("CREATE TABLE pts (x float)")
            db.execute("INSERT INTO pts VALUES (0.0), (3.0), (1.5)")
            rows = db.query(
                "SELECT count(*) FROM pts GROUP BY x "
                "DISTANCE-TO-ALL L2 WITHIN 2 ON-OVERLAP JOIN-ANY"
            ).rows
            assert sorted(rows) == [(1,), (2,)]
