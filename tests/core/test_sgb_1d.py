"""Tests for the one-dimensional SGB operators (ICDE 2009 semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import ELIMINATED
from repro.core.sgb_1d import sgb_around, sgb_segment
from repro.errors import InvalidParameterError

values_strategy = st.lists(st.floats(-100, 100, allow_nan=False),
                           max_size=40)


class TestSegmentValidation:
    def test_negative_separation(self):
        with pytest.raises(InvalidParameterError):
            sgb_segment([1], max_separation=-1)

    def test_negative_diameter(self):
        with pytest.raises(InvalidParameterError):
            sgb_segment([1], max_separation=1, max_diameter=-1)


class TestSegment:
    def test_empty(self):
        res = sgb_segment([], 1)
        assert res.n_points == 0 and res.n_groups == 0

    def test_single(self):
        assert sgb_segment([5], 1).labels == [0]

    def test_gap_splits(self):
        res = sgb_segment([1, 2, 8, 9, 2.5], max_separation=1)
        assert res.group_sizes() == [3, 2]
        # labels are in input order
        assert res.labels[0] == res.labels[1] == res.labels[4]
        assert res.labels[2] == res.labels[3]

    def test_order_independent(self):
        a = sgb_segment([1, 2, 8, 9, 2.5], 1)
        b = sgb_segment([9, 2.5, 1, 8, 2], 1)
        assert sorted(a.group_sizes()) == sorted(b.group_sizes())

    def test_diameter_caps_group_width(self):
        # consecutive gaps all <= 1, but diameter 2 forces splits
        res = sgb_segment([0, 1, 2, 3, 4], max_separation=1, max_diameter=2)
        for members in res.groups().values():
            vals = [res.points[i][0] for i in members]
            assert max(vals) - min(vals) <= 2

    def test_zero_separation_groups_exact_duplicates(self):
        res = sgb_segment([1, 1, 2, 1], max_separation=0)
        assert sorted(res.group_sizes()) == [1, 3]

    def test_duplicates_within_group(self):
        res = sgb_segment([5, 5, 5], 0.1)
        assert res.group_sizes() == [3]

    @settings(max_examples=50, deadline=None)
    @given(values=values_strategy, sep=st.floats(0, 10, allow_nan=False))
    def test_invariants(self, values, sep):
        res = sgb_segment(values, sep)
        assert res.n_eliminated == 0
        groups = res.group_points()
        sorted_groups = sorted(
            (sorted(v[0] for v in pts) for pts in groups.values()),
        )
        for i, vals in enumerate(sorted_groups):
            # within a group: consecutive sorted gaps <= sep
            for a, b in zip(vals, vals[1:]):
                assert b - a <= sep + 1e-9
            # between adjacent groups: gap > sep
            if i + 1 < len(sorted_groups):
                assert sorted_groups[i + 1][0] - vals[-1] > sep - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(values=values_strategy, sep=st.floats(0.1, 5, allow_nan=False),
           diam=st.floats(0.1, 10, allow_nan=False))
    def test_diameter_invariant(self, values, sep, diam):
        res = sgb_segment(values, sep, max_diameter=diam)
        for pts in res.group_points().values():
            vals = [p[0] for p in pts]
            assert max(vals) - min(vals) <= diam + 1e-9


class TestAroundValidation:
    def test_no_centers(self):
        with pytest.raises(InvalidParameterError):
            sgb_around([1], centers=[])

    def test_negative_diameter(self):
        with pytest.raises(InvalidParameterError):
            sgb_around([1], centers=[0], max_diameter=-2)


class TestAround:
    def test_nearest_center_wins(self):
        res = sgb_around([1, 4, 6, 9], centers=[0, 10])
        assert res.labels == [0, 0, 1, 1]

    def test_tie_goes_to_earlier_center(self):
        res = sgb_around([5], centers=[0, 10])
        assert res.labels == [0]

    def test_diameter_excludes_far_points(self):
        res = sgb_around([1, 4, 6, 40], centers=[0, 5], max_diameter=4)
        assert res.labels == [0, 1, 1, ELIMINATED]

    def test_labels_are_center_indices(self):
        res = sgb_around([9.5, 0.5], centers=[0, 10])
        assert res.labels == [1, 0]

    def test_empty(self):
        res = sgb_around([], centers=[1])
        assert res.n_points == 0

    @settings(max_examples=50, deadline=None)
    @given(values=values_strategy,
           centers=st.lists(st.floats(-100, 100, allow_nan=False),
                            min_size=1, max_size=5),
           diam=st.one_of(st.none(), st.floats(0, 50, allow_nan=False)))
    def test_nearest_assignment_invariant(self, values, centers, diam):
        res = sgb_around(values, centers, max_diameter=diam)
        for v, lb in zip(values, res.labels):
            dists = [abs(v - c) for c in centers]
            nearest = min(dists)
            if lb == ELIMINATED:
                assert diam is not None and nearest > diam / 2 - 1e-9
            else:
                assert dists[lb] == pytest.approx(nearest)
                if diam is not None:
                    assert dists[lb] <= diam / 2 + 1e-9


class TestSQLIntegration:
    @pytest.fixture
    def db(self):
        from repro.engine.database import Database

        d = Database()
        d.execute("CREATE TABLE m (v float, tag text)")
        d.execute(
            "INSERT INTO m VALUES (1,'a'),(2,'b'),(2.5,'c'),(8,'d'),"
            "(9,'e'),(40,'f')"
        )
        return d

    def test_segment_sql(self, db):
        res = db.query(
            "SELECT count(*), min(v), max(v) FROM m "
            "GROUP BY v MAXIMUM-ELEMENT-SEPARATION 1"
        )
        assert sorted(res.rows) == [
            (1, 40.0, 40.0), (2, 8.0, 9.0), (3, 1.0, 2.5),
        ]

    def test_segment_with_diameter_sql(self, db):
        res = db.query(
            "SELECT count(*) FROM m GROUP BY v "
            "MAXIMUM-ELEMENT-SEPARATION 1 MAXIMUM-GROUP-DIAMETER 1"
        )
        assert sorted(r[0] for r in res) == [1, 1, 2, 2]

    def test_around_sql(self, db):
        res = db.query(
            "SELECT count(*), array_agg(tag) FROM m "
            "GROUP BY v AROUND (0, 10) MAXIMUM-GROUP-DIAMETER 8"
        )
        assert sorted((r[0], tuple(r[1])) for r in res) == [
            (2, ("d", "e")), (3, ("a", "b", "c")),
        ]

    def test_around_without_diameter_groups_everything(self, db):
        res = db.query(
            "SELECT count(*) FROM m GROUP BY v AROUND (0, 10)"
        )
        assert sum(r[0] for r in res) == 6

    def test_requires_single_attribute(self, db):
        from repro.errors import PlanningError

        db.execute("CREATE TABLE two (x float, y float)")
        with pytest.raises(PlanningError, match="exactly one"):
            db.query(
                "SELECT count(*) FROM two GROUP BY x, y "
                "MAXIMUM-ELEMENT-SEPARATION 1"
            )

    def test_explain_shows_1d_node(self, db):
        plan = db.explain(
            "SELECT count(*) FROM m GROUP BY v "
            "MAXIMUM-ELEMENT-SEPARATION 1"
        )
        assert "SimilarityGroupBy1D" in plan

    def test_null_values_skipped(self, db):
        db.execute("INSERT INTO m VALUES (NULL, 'n')")
        res = db.query(
            "SELECT count(*) FROM m GROUP BY v MAXIMUM-ELEMENT-SEPARATION 1"
        )
        assert sum(r[0] for r in res) == 6
