"""Average-case cost model of the SGB-All strategies (paper Appendix).

The appendix derives per-strategy running times in terms of the input size
``n``, the number of live groups ``|G|``, the expected group size ``k``,
and — for the overlap-handling clauses — the candidate/overlap set sizes.
This module encodes those closed forms so experiments can print *predicted*
operation counts next to the measured ones (``CountingMetric`` /
``fit_loglog_slope``), and tests can assert the qualitative claims
(orderings and growth exponents) directly from the model.

The model counts the dominant primitive of each strategy:

* All-Pairs — similarity-predicate (distance) evaluations;
* Bounds-Checking — rectangle tests (one ε-All containment test per live
  group per point);
* on-the-fly Index — R-tree node inspections (≈ fanout · log_f |G| per
  window query).

These are different primitives with different constants, which is why the
paper reports them as asymptotic classes rather than a single unit; the
model does the same.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import InvalidParameterError


class CostModel:
    """Predicted dominant-operation counts for one SGB-All run.

    Parameters
    ----------
    n:
        Number of input points.
    n_groups:
        Expected number of live groups ``|G|`` (use the measured group
        count of a comparable run, or :func:`expected_groups_uniform`).
    rtree_fanout:
        The on-the-fly index's node fanout ``f``.
    """

    def __init__(self, n: int, n_groups: int, rtree_fanout: int = 8):
        if n < 0 or n_groups < 0:
            raise InvalidParameterError("n and n_groups must be >= 0")
        if n_groups > n:
            raise InvalidParameterError("cannot have more groups than points")
        self.n = n
        self.n_groups = n_groups
        self.fanout = max(2, rtree_fanout)

    # ------------------------------------------------------------------
    @property
    def group_size(self) -> float:
        """Expected members per group, k = n / |G| (appendix notation)."""
        return self.n / self.n_groups if self.n_groups else 0.0

    def all_pairs_distance_evaluations(self) -> float:
        """Naive FindCloseGroups inspects every previously seen point:
        sum_{i<n} i = n(n-1)/2 — the O(n²) row of Table 1."""
        return self.n * (self.n - 1) / 2.0

    def bounds_checking_rectangle_tests(self) -> float:
        """One ε-All rectangle containment test per live group per point —
        the O(n·|G|) row.  |G| grows over the run; with groups appearing
        roughly uniformly the expected live count is |G|/2 per point."""
        return self.n * self.n_groups / 2.0

    def indexed_node_inspections(self) -> float:
        """A window query touches ≈ f · log_f(|G|) node entries — the
        O(n·log |G|) row."""
        if self.n_groups <= 1:
            return float(self.n)
        per_query = self.fanout * math.log(self.n_groups, self.fanout)
        return self.n * per_query

    def form_new_group_factor(self, recursion_depth: int) -> float:
        """FORM-NEW-GROUP repeats the pass over the deferred set; the
        appendix bounds the total by the m-fold sum (O(m·n·log|G|) for the
        indexed strategy).  Returned as a multiplier on the base cost."""
        if recursion_depth < 0:
            raise InvalidParameterError("recursion depth must be >= 0")
        return 1.0 + recursion_depth

    def summary(self) -> Dict[str, float]:
        return {
            "all-pairs (distance evals)": self.all_pairs_distance_evaluations(),
            "bounds-checking (rect tests)": self.bounds_checking_rectangle_tests(),
            "index (node inspections)": self.indexed_node_inspections(),
        }


def expected_groups_uniform(n: int, eps: float, span: float,
                            dim: int = 2) -> int:
    """Rough |G| estimate for SGB-All on uniform data in a ``span``-sided
    cube: a clique fits in an ε-sided cell, so at saturation there are about
    ``(span/eps)^dim`` groups; with few points, every point is its own
    group.  This matches the measured Figure-9 group counts within a small
    factor — good enough for ordering predictions, which is all the model
    promises."""
    if eps <= 0 or span <= 0:
        raise InvalidParameterError("eps and span must be positive")
    cells = (span / eps) ** dim
    return max(1, min(n, int(round(cells))))


def predicted_growth_exponent(strategy: str) -> float:
    """The appendix's asymptotic exponent in n at fixed ε on uniform data
    (where |G| grows linearly in n until saturation): All-Pairs is
    quadratic, Bounds-Checking follows n·|G| ≈ n·min(n, cells), the index
    is n·log|G| ≈ near-linear."""
    table = {
        "all-pairs": 2.0,
        "bounds-checking": 2.0,  # pre-saturation, |G| ~ n
        "index": 1.0,
    }
    try:
        return table[strategy]
    except KeyError:
        raise InvalidParameterError(
            f"unknown strategy {strategy!r}"
        ) from None
