"""Uniform grid index over points — an ablation alternative to the R-tree.

SGB-Any only ever issues fixed-size window queries (side ``2ε``), which a
hash grid with cell side ``ε`` answers by probing a constant number of
neighbouring cells.  The benchmark suite compares this against the R-tree
(``benchmarks/bench_ablation.py``) to quantify how much of the paper's
speed-up comes from indexing per se versus the specific index structure.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.rectangle import Rect

_Bucket = List[Tuple[Tuple[float, ...], Any]]


class GridIndex:
    """Hash grid of fixed cell side over d-dimensional points.

    The cell table is a plain dict (not a defaultdict): buckets exist iff
    they hold at least one point, and :meth:`delete` drops a bucket the
    moment its last point leaves, so the table cannot grow without bound
    under streaming insert/delete churn.  ``tests/index/test_grid.py``
    pins both properties.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise InvalidParameterError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[Tuple[int, ...], _Bucket] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @classmethod
    def bulk_build(cls, points_items: Sequence[Tuple[Sequence[float], Any]],
                   cell_size: float, presort: str = "hilbert") -> "GridIndex":
        """Build a grid from ``(point, item)`` pairs in one pass.

        With ``presort="hilbert"`` (the default) points are inserted in
        space-filling-curve order, so the buckets of neighbouring cells
        are allocated back to back and each bucket's point list is
        appended contiguously — the cell-neighbourhood scans that
        dominate SGB-Any probe time then walk memory mostly in order.
        ``presort="none"`` keeps the input order (ablation baseline).
        """
        if presort not in ("hilbert", "none"):
            raise InvalidParameterError(
                f"presort must be 'hilbert' or 'none', got {presort!r}"
            )
        grid = cls(cell_size)
        if not points_items:
            return grid
        pts = [tuple(float(v) for v in p) for p, _ in points_items]
        if presort == "hilbert":
            from repro.index.hilbert import sort_indices

            order = sort_indices(pts)
        else:
            order = list(range(len(pts)))
        for i in order:
            grid.insert(pts[i], points_items[i][1])
        return grid

    def _cell_of(self, p: Sequence[float]) -> Tuple[int, ...]:
        return tuple(int(v // self.cell_size) for v in p)

    def insert(self, point: Sequence[float], item: Any) -> None:
        pt = tuple(float(v) for v in point)
        cell = self._cell_of(pt)
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = self._cells[cell] = []
        bucket.append((pt, item))
        self._size += 1

    def delete(self, point: Sequence[float], item: Any) -> bool:
        pt = tuple(float(v) for v in point)
        cell = self._cell_of(pt)
        bucket = self._cells.get(cell)
        if not bucket:
            return False
        for i, (p, it) in enumerate(bucket):
            if p == pt and it == item:
                del bucket[i]
                if not bucket:
                    del self._cells[cell]
                self._size -= 1
                return True
        return False

    def search(self, window: Rect) -> List[Any]:
        """Items whose point lies inside ``window`` (closed boundaries)."""
        return [item for _, item in self.search_with_points(window)]

    def search_with_points(
        self, window: Rect
    ) -> List[Tuple[Tuple[float, ...], Any]]:
        lo_cell = self._cell_of(window.lo)
        hi_cell = self._cell_of(window.hi)
        out: List[Tuple[Tuple[float, ...], Any]] = []
        for cell in _cell_range(lo_cell, hi_cell):
            bucket = self._cells.get(cell)
            if bucket is None:
                continue
            for pt, item in bucket:
                if window.contains_point(pt):
                    out.append((pt, item))
        return out

    def items_in_cell_range(self, window: Rect) -> List[Any]:
        """Raw items from every cell overlapping ``window`` — *without*
        the per-point containment test.

        This is the gather half of the window query; callers that verify
        candidates in bulk (:mod:`repro.kernels`) run the containment and
        distance tests as one vectorized pass over the gathered ids.
        """
        lo_cell = self._cell_of(window.lo)
        hi_cell = self._cell_of(window.hi)
        out: List[Any] = []
        for cell in _cell_range(lo_cell, hi_cell):
            bucket = self._cells.get(cell)
            if bucket:
                for _, item in bucket:
                    out.append(item)
        return out

    def items(self) -> Iterator[Tuple[Tuple[float, ...], Any]]:
        for bucket in self._cells.values():
            yield from bucket


def _cell_range(
    lo: Tuple[int, ...], hi: Tuple[int, ...]
) -> Iterator[Tuple[int, ...]]:
    """All integer cells in the axis-aligned cell box [lo, hi]."""
    if len(lo) == 2:  # common case, unrolled for speed
        for x in range(lo[0], hi[0] + 1):
            for y in range(lo[1], hi[1] + 1):
                yield (x, y)
        return
    ranges = [range(l, h + 1) for l, h in zip(lo, hi)]

    def rec(prefix: Tuple[int, ...], rest: List[range]) -> Iterator[Tuple[int, ...]]:
        if not rest:
            yield prefix
            return
        for v in rest[0]:
            yield from rec(prefix + (v,), rest[1:])

    yield from rec((), ranges)
