"""Deadlines and cancellation through the full service stack.

All timing here leans on the ``sleep(s)`` scalar (one sleep per input
row), which makes query duration proportional to row count — slow enough
to cancel reliably, fast enough to keep the suite quick.
"""

import time

import pytest

from repro.engine.database import Database
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.obs.export import parse_prometheus_text
from repro.service import ServerThread, ServiceClient, ServiceConfig

#: ~40 rows x 0.2 s/row = ~8 s if allowed to run to completion.
SLOW_SQL = "SELECT sum(sleep(0.2)) FROM pts"
FAST_SQL = "SELECT count(*) FROM pts"


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE pts (x float, y float)")
    db.insert("pts", [(float(i % 7), float(i % 5)) for i in range(40)])
    return db


@pytest.fixture
def server():
    with ServerThread(db=make_db()) as s:
        yield s


class TestDeadlines:
    def test_deadline_exceeded_returns_typed_timeout(self, server):
        with ServiceClient(port=server.port) as c:
            t0 = time.monotonic()
            with pytest.raises(QueryTimeoutError, match="deadline"):
                c.query(SLOW_SQL, timeout_s=0.5)
            # Aborted at the deadline, nowhere near the ~8 s full run.
            assert time.monotonic() - t0 < 5.0

    def test_other_session_completes_while_one_times_out(self, server):
        expected = server.db.query(FAST_SQL).rows
        with ServiceClient(port=server.port) as slow, \
                ServiceClient(port=server.port) as fast:
            slow_rid = slow.request("query", sql=SLOW_SQL, timeout_s=0.5)
            # The fast session queues behind the statement lock; it must
            # still come back correct once the doomed query aborts.
            assert fast.query(FAST_SQL, timeout_s=30.0).rows == expected
            with pytest.raises(QueryTimeoutError):
                slow.wait(slow_rid)

    def test_server_default_deadline_applies(self):
        config = ServiceConfig(port=0, metrics_port=None,
                               default_timeout_s=0.5)
        with ServerThread(db=make_db(), config=config) as server:
            with ServiceClient(port=server.port) as c:
                with pytest.raises(QueryTimeoutError):
                    c.query(SLOW_SQL)  # no client-side timeout_s needed

    def test_timeout_counted_in_service_metrics(self, server):
        with ServiceClient(port=server.port) as c:
            with pytest.raises(QueryTimeoutError):
                c.query(SLOW_SQL, timeout_s=0.3)
            parsed = parse_prometheus_text(c.metrics())
            assert parsed[("repro_service_timeouts_total", ())] == 1
            assert parsed[("repro_service_completed_total", ())] >= 0


class TestClientCancel:
    def test_cancel_mid_query_raises_typed_error(self, server):
        with ServiceClient(port=server.port) as c:
            rid = c.request("query", sql=SLOW_SQL)
            time.sleep(0.3)  # let it reach the engine
            assert c.cancel(rid) is True
            t0 = time.monotonic()
            with pytest.raises(QueryCancelledError, match="cancelled"):
                c.wait(rid)
            assert time.monotonic() - t0 < 5.0

    def test_cancel_unknown_request_id_is_false(self, server):
        with ServiceClient(port=server.port) as c:
            assert c.cancel("no-such-request") is False

    def test_worker_slot_reclaimed_after_cancel(self, server):
        expected = server.db.query(FAST_SQL).rows
        with ServiceClient(port=server.port) as c:
            rid = c.request("query", sql=SLOW_SQL)
            time.sleep(0.2)
            assert c.cancel(rid)
            with pytest.raises(QueryCancelledError):
                c.wait(rid)
            # Same session, same workers: the slot freed by the cancelled
            # query serves the next statement promptly and correctly.
            t0 = time.monotonic()
            assert c.query(FAST_SQL).rows == expected
            assert time.monotonic() - t0 < 5.0
            parsed = parse_prometheus_text(c.metrics())
            assert parsed[("repro_service_cancelled_total", ())] == 1
            assert parsed[("repro_service_inflight", ())] == 0.0


class TestDisconnectCleanup:
    def test_disconnect_cancels_inflight_queries(self, server):
        doomed = ServiceClient(port=server.port)
        doomed.request("query", sql=SLOW_SQL)
        time.sleep(0.3)  # in the engine by now, holding the lock
        doomed.close()   # hang up without waiting
        # The disconnect trips the token, so the lock frees well before
        # the ~8 s the slow query would otherwise hold it.
        expected = server.db.query  # bound method; direct call below
        with ServiceClient(port=server.port) as c:
            t0 = time.monotonic()
            rows = c.query(FAST_SQL, timeout_s=30.0).rows
            assert time.monotonic() - t0 < 5.0
        assert rows == expected(FAST_SQL).rows
        deadline = time.monotonic() + 5.0
        while True:  # response-task cleanup races the close; poll briefly
            parsed = parse_prometheus_text(server.service.metrics_text())
            if parsed[("repro_service_cancelled_total", ())] >= 1 \
                    and parsed[("repro_service_sessions_active", ())] == 0.0:
                break
            if time.monotonic() >= deadline:
                raise AssertionError(f"cleanup never settled: {parsed}")
            time.sleep(0.05)
