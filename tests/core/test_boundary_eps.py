"""Boundary behaviour: points at exactly eps, duplicates, and the
distance-computation ordering the paper's pruning strategies promise.

The similarity predicate is *closed* (``d(p, q) <= eps`` groups p and q),
so points separated by exactly eps must land in one group under every
strategy and every ON-OVERLAP clause.
"""

import pytest

from repro.core.api import sgb_all, sgb_any
from repro.core.sgb_all import SGBAllOperator
from repro.obs import MetricBag

ALL_STRATEGIES = ["all-pairs", "bounds-checking", "index"]
OVERLAP_CLAUSES = ["join-any", "eliminate", "form-new-group"]
ANY_STRATEGIES = ["all-pairs", "index", "grid"]


class TestExactEpsBoundary:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("clause", OVERLAP_CLAUSES)
    def test_pair_at_exactly_eps_is_one_group(self, strategy, clause):
        # |(0,0) - (3,4)| == 5 exactly; the closed predicate keeps them
        # together, so no overlap ever arises and every clause agrees.
        result = sgb_all([(0.0, 0.0), (3.0, 4.0)], eps=5.0,
                         strategy=strategy, on_overlap=clause,
                         tiebreak="first")
        assert result.labels == [0, 0]

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("clause", OVERLAP_CLAUSES)
    def test_pair_just_past_eps_splits(self, strategy, clause):
        result = sgb_all([(0.0, 0.0), (5.000001, 0.0)], eps=5.0,
                         strategy=strategy, on_overlap=clause,
                         tiebreak="first")
        assert sorted(result.labels) == [0, 1]

    @pytest.mark.parametrize("strategy", ANY_STRATEGIES)
    def test_any_pair_at_exactly_eps_is_one_group(self, strategy):
        result = sgb_any([(0.0, 0.0), (3.0, 4.0)], eps=5.0,
                         strategy=strategy)
        assert result.labels == [0, 0]

    @pytest.mark.parametrize("metric", ["l1", "l2", "linf"])
    def test_boundary_closed_for_every_metric(self, metric):
        # Axis-aligned pair: all three Minkowski metrics give distance 1.
        result = sgb_all([(0.0, 0.0), (1.0, 0.0)], eps=1.0, metric=metric,
                         tiebreak="first")
        assert result.labels == [0, 0]


class TestDuplicates:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("clause", OVERLAP_CLAUSES)
    def test_duplicates_always_share_a_group(self, strategy, clause):
        pts = [(1.0, 1.0)] * 4 + [(9.0, 9.0)] * 2
        result = sgb_all(pts, eps=0.5, strategy=strategy,
                         on_overlap=clause, tiebreak="first")
        assert result.labels[:4] == [result.labels[0]] * 4
        assert result.labels[4:] == [result.labels[4]] * 2
        assert result.labels[0] != result.labels[4]

    def test_strategies_and_clauses_agree_on_boundary_workload(self):
        # Mixed workload: a duplicate pair, an exact-eps pair, a far point.
        pts = [(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (10.0, 0.0)]
        reference = None
        for strategy in ALL_STRATEGIES:
            for clause in OVERLAP_CLAUSES:
                labels = sgb_all(pts, eps=1.0, strategy=strategy,
                                 on_overlap=clause, tiebreak="first").labels
                if reference is None:
                    reference = labels
                assert labels == reference, (strategy, clause)


class TestPruningReducesDistanceComputations:
    @staticmethod
    def _clustered_points():
        # 8 well-separated clusters of 12 points each: a pruning strategy
        # only has to verify against the local cluster.
        pts = []
        for c in range(8):
            cx, cy = (c % 4) * 100.0, (c // 4) * 100.0
            for i in range(12):
                pts.append((cx + (i % 4) * 0.1, cy + (i // 4) * 0.1))
        return pts

    def _distance_count(self, strategy):
        bag = MetricBag()
        op = SGBAllOperator(eps=1.0, strategy=strategy, tiebreak="first",
                            metrics=bag)
        op.add_many(self._clustered_points())
        op.finalize()
        return bag.get("distance_computations")

    @pytest.mark.parametrize("strategy", ["bounds-checking", "index"])
    def test_pruning_strictly_below_all_pairs(self, strategy):
        assert self._distance_count(strategy) < \
            self._distance_count("all-pairs")

    def test_counters_distinguish_index_from_linear_scan(self):
        def candidates(strategy):
            bag = MetricBag()
            op = SGBAllOperator(eps=1.0, strategy=strategy,
                                tiebreak="first", metrics=bag)
            op.add_many(self._clustered_points())
            op.finalize()
            return bag.get("candidates")

        # The R-tree window query examines far fewer group candidates than
        # a linear registry scan on a clustered workload.
        assert candidates("index") < candidates("all-pairs")
