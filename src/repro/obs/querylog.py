"""Structured query log with plan fingerprints and a drift detector.

Every executed SELECT can be recorded as one :class:`QueryRecord`:
what ran (SQL, plan fingerprint, chosen SGB strategy + provenance), what
the planner *expected* (estimated rows / cost from the
:mod:`repro.stats` cost model), and what actually happened (rows,
latency, resource counters).  The record's ``ratio`` — actual rows over
estimated rows — is the planner's report card: a ratio outside the
configured band marks the record as **drifted**, which is the concrete
evidence the cost-based chooser needs before anyone trusts (or fixes)
its estimates.

Plan fingerprints
-----------------
:func:`plan_fingerprint` hashes the plan *shape*: every node's
``describe()`` line at its tree depth, with the volatile
``strategy=<name>/<source>`` suffix stripped.  Two executions of the
same logical plan therefore share a fingerprint even when the chooser
picked different strategies (the strategy is recorded separately), so
aggregating misestimates by fingerprint groups them by *plan*, which is
where cardinality estimates live.

Storage
-------
Records always land in a bounded in-memory ring (feeding the shell's
``\\querylog`` and the service's ``/status`` slow-query view); with a
``path`` they are also appended as JSONL — one self-describing object
per line, the format ``python -m repro.obs.querylog`` aggregates:

    python -m repro.obs.querylog queries.jsonl            # by fingerprint
    python -m repro.obs.querylog queries.jsonl --drift-only
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

#: Default drift band: actual/estimated row ratios outside
#: [1/3, 3] flag the record.  PostgreSQL folklore calls one order of
#: magnitude "bad"; 3x is where SGB strategy rankings start flipping.
DEFAULT_BAND = (1 / 3.0, 3.0)

#: Default in-memory ring capacity.
DEFAULT_CAPACITY = 256

_STRATEGY_SUFFIX = " strategy="


def _strip_strategy(describe_line: str) -> str:
    """Drop the volatile ``strategy=<name>/<source>`` describe suffix."""
    i = describe_line.rfind(_STRATEGY_SUFFIX)
    if i >= 0 and " " not in describe_line[i + len(_STRATEGY_SUFFIX):]:
        return describe_line[:i]
    return describe_line


def plan_signature(plan) -> List[str]:
    """The structural signature lines a fingerprint is hashed from."""
    lines: List[str] = []

    def walk(node, depth: int) -> None:
        lines.append(f"{depth}:{_strip_strategy(node.describe())}")
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    return lines


def plan_fingerprint(plan) -> str:
    """Stable 16-hex-digit fingerprint of the plan's structure."""
    blob = "\n".join(plan_signature(plan)).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=8).hexdigest()


def _plan_decision(plan) -> Tuple[str, str]:
    """``(strategy, source)`` from the first SGB node in the plan."""
    nodes = [plan]
    while nodes:
        node = nodes.pop(0)
        strategy = getattr(node, "strategy", None)
        if isinstance(strategy, str):
            choice = getattr(node, "choice", None)
            source = getattr(choice, "source", "") if choice is not None \
                else "config"
            return strategy, source
        nodes.extend(node.children())
    return "", ""


class QueryRecord:
    """One logged query execution (see the module docstring)."""

    __slots__ = (
        "ts", "sql", "fingerprint", "root", "strategy", "strategy_source",
        "est_rows", "est_cost", "actual_rows", "latency_ms", "ratio",
        "drift", "counters",
    )

    def __init__(self, ts: float, sql: str, fingerprint: str, root: str,
                 strategy: str, strategy_source: str,
                 est_rows: Optional[int], est_cost: Optional[float],
                 actual_rows: int, latency_ms: float,
                 ratio: Optional[float], drift: bool,
                 counters: Dict[str, float]):
        self.ts = ts
        self.sql = sql
        self.fingerprint = fingerprint
        self.root = root
        self.strategy = strategy
        self.strategy_source = strategy_source
        self.est_rows = est_rows
        self.est_cost = est_cost
        self.actual_rows = actual_rows
        self.latency_ms = latency_ms
        self.ratio = ratio
        self.drift = drift
        self.counters = counters

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ts": round(self.ts, 6),
            "sql": self.sql,
            "fingerprint": self.fingerprint,
            "root": self.root,
            "actual_rows": self.actual_rows,
            "latency_ms": round(self.latency_ms, 3),
            "drift": self.drift,
        }
        if self.strategy:
            out["strategy"] = self.strategy
            out["strategy_source"] = self.strategy_source
        if self.est_rows is not None:
            out["est_rows"] = self.est_rows
        if self.est_cost is not None:
            out["est_cost"] = round(self.est_cost, 4)
        if self.ratio is not None:
            out["ratio"] = round(self.ratio, 4)
        if self.counters:
            out["counters"] = self.counters
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "QueryRecord":
        return cls(
            ts=float(d.get("ts", 0.0)),
            sql=str(d.get("sql", "")),
            fingerprint=str(d.get("fingerprint", "")),
            root=str(d.get("root", "")),
            strategy=str(d.get("strategy", "")),
            strategy_source=str(d.get("strategy_source", "")),
            est_rows=d.get("est_rows"),
            est_cost=d.get("est_cost"),
            actual_rows=int(d.get("actual_rows", 0)),
            latency_ms=float(d.get("latency_ms", 0.0)),
            ratio=d.get("ratio"),
            drift=bool(d.get("drift", False)),
            counters=dict(d.get("counters", {})),
        )

    def __repr__(self) -> str:
        flag = " DRIFT" if self.drift else ""
        return (
            f"QueryRecord({self.fingerprint}, rows={self.actual_rows}, "
            f"est={self.est_rows}, {self.latency_ms:.2f} ms{flag})"
        )


class QueryLog:
    """Thread-safe query log: bounded ring plus optional JSONL sink.

    Parameters
    ----------
    path:
        Optional JSONL file; records append (the file is created on the
        first write, opened in append mode so logs survive reopening).
    band:
        ``(low, high)`` drift band on actual/estimated rows; a ratio
        outside it (strictly) marks the record as drifted.
    capacity:
        In-memory ring size for :meth:`recent` / :meth:`slowest`.
    """

    def __init__(self, path: Optional[str] = None,
                 band: Tuple[float, float] = DEFAULT_BAND,
                 capacity: int = DEFAULT_CAPACITY):
        low, high = float(band[0]), float(band[1])
        if not (0 < low <= high):
            raise ValueError(
                f"drift band must satisfy 0 < low <= high, got {band!r}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = str(path) if path is not None else None
        self.band = (low, high)
        self._ring: Deque[QueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._fh = None
        self.recorded = 0
        self.drifted = 0

    # -- recording ---------------------------------------------------------
    def record_query(self, sql: str, plan, actual_rows: int,
                     latency_s: float,
                     counters: Optional[Dict[str, float]] = None
                     ) -> QueryRecord:
        """Build, store, and return the record for one executed plan.

        The caller (the Database) supplies what only it knows — the SQL,
        the executed plan, the row count, and the latency it measured
        with its monotonic clock; everything else (fingerprint, estimate
        extraction, drift classification, wall timestamp) happens here.
        """
        est = getattr(plan, "_estimate", None)
        est_rows = est.rows_int if est is not None else None
        est_cost = est.total_cost if est is not None else None
        ratio: Optional[float] = None
        drift = False
        if est_rows is not None:
            # An estimate of 0 rows still predicts "tiny"; clamp to one
            # row so the ratio stays finite and 0-vs-0 is not a drift.
            ratio = max(actual_rows, 1) / max(est_rows, 1)
            low, high = self.band
            drift = ratio < low or ratio > high
        strategy, source = _plan_decision(plan)
        record = QueryRecord(
            ts=time.time(),
            sql=" ".join(sql.split()),
            fingerprint=plan_fingerprint(plan),
            root=_strip_strategy(plan.describe()),
            strategy=strategy,
            strategy_source=source,
            est_rows=est_rows,
            est_cost=est_cost,
            actual_rows=actual_rows,
            latency_ms=latency_s * 1000.0,
            ratio=ratio,
            drift=drift,
            counters=dict(counters or {}),
        )
        self.append(record)
        return record

    def append(self, record: QueryRecord) -> None:
        with self._lock:
            self._ring.append(record)
            self.recorded += 1
            if record.drift:
                self.drifted += 1
            if self.path is not None:
                if self._fh is None:
                    self._fh = open(self.path, "a", encoding="utf-8")
                self._fh.write(
                    json.dumps(record.as_dict(), sort_keys=True) + "\n"
                )
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- reading -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def recent(self, n: int = 10) -> List[QueryRecord]:
        """The last ``n`` records, newest first."""
        with self._lock:
            items = list(self._ring)
        return items[::-1][:n]

    def slowest(self, n: int = 5) -> List[QueryRecord]:
        """The ``n`` highest-latency retained records, slowest first."""
        with self._lock:
            items = list(self._ring)
        return sorted(items, key=lambda r: -r.latency_ms)[:n]

    def drift_records(self) -> List[QueryRecord]:
        with self._lock:
            return [r for r in self._ring if r.drift]

    def status(self, slow: int = 5) -> Dict[str, Any]:
        """JSON-ready summary for the service ``/status`` endpoint."""
        return {
            "recorded": self.recorded,
            "drifted": self.drifted,
            "retained": len(self._ring),
            "band": list(self.band),
            "path": self.path,
            "slow_queries": [r.as_dict() for r in self.slowest(slow)],
        }


# ----------------------------------------------------------------------
# offline aggregation (the ``python -m repro.obs.querylog`` CLI)
# ----------------------------------------------------------------------
def load_records(path: str) -> List[QueryRecord]:
    """Read a JSONL query log back into records (bad lines are skipped)."""
    records: List[QueryRecord] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
                if isinstance(d, dict):
                    records.append(QueryRecord.from_dict(d))
            except (ValueError, TypeError, KeyError):
                continue
    return records


def aggregate_by_fingerprint(
    records: Sequence[QueryRecord],
) -> List[Dict[str, Any]]:
    """Fold records into per-fingerprint misestimate summaries.

    Sorted worst first: by drifted count, then by how far the median
    ratio sits from 1.0 — the plans whose estimates most need fixing.
    """
    groups: Dict[str, List[QueryRecord]] = {}
    for r in records:
        groups.setdefault(r.fingerprint, []).append(r)
    out: List[Dict[str, Any]] = []
    for fp, items in groups.items():
        ratios = sorted(r.ratio for r in items if r.ratio is not None)
        median_ratio = ratios[len(ratios) // 2] if ratios else None
        worst_ratio = None
        if ratios:
            # Ratios are always positive; "worst" is the one farthest
            # from 1.0 multiplicatively (5x under is as bad as 5x over).
            worst_ratio = max(ratios, key=lambda x: max(x, 1.0 / x))
        misest = 0.0
        if median_ratio:
            misest = max(median_ratio, 1.0 / median_ratio)
        out.append({
            "fingerprint": fp,
            "count": len(items),
            "drifted": sum(1 for r in items if r.drift),
            "median_ratio": median_ratio,
            "worst_ratio": worst_ratio,
            "avg_latency_ms": sum(r.latency_ms for r in items) / len(items),
            "strategies": sorted({
                f"{r.strategy}/{r.strategy_source}"
                for r in items if r.strategy
            }),
            "example_sql": items[-1].sql,
            "_misestimate": misest,
        })
    out.sort(key=lambda g: (-g["drifted"], -g["_misestimate"], -g["count"]))
    for g in out:
        del g["_misestimate"]
    return out


def render_aggregate(groups: Sequence[Dict[str, Any]],
                     band: Tuple[float, float] = DEFAULT_BAND) -> str:
    """Text table for the CLI, one line per plan fingerprint."""
    total = sum(g["count"] for g in groups)
    drifted = sum(g["drifted"] for g in groups)
    lines = [
        f"{total} record(s), {len(groups)} plan fingerprint(s), "
        f"{drifted} drifted (band {band[0]:g}..{band[1]:g})",
        f"{'fingerprint':16s} {'count':>5s} {'drift':>5s} "
        f"{'med_ratio':>9s} {'worst':>7s} {'avg_ms':>8s}  strategies",
    ]
    for g in groups:
        med = f"{g['median_ratio']:.2f}" if g["median_ratio"] is not None \
            else "-"
        worst = f"{g['worst_ratio']:.2f}" if g["worst_ratio"] is not None \
            else "-"
        lines.append(
            f"{g['fingerprint']:16s} {g['count']:5d} {g['drifted']:5d} "
            f"{med:>9s} {worst:>7s} {g['avg_latency_ms']:8.2f}  "
            f"{','.join(g['strategies']) or '-'}"
        )
        sql = g["example_sql"]
        if len(sql) > 76:
            sql = sql[:73] + "..."
        lines.append(f"{'':16s} {sql}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.querylog",
        description="Aggregate a JSONL query log by plan fingerprint, "
                    "surfacing the plans whose row estimates drift most.",
    )
    parser.add_argument("path", help="query-log JSONL file")
    parser.add_argument("--drift-only", action="store_true",
                        help="only aggregate records flagged as drifted")
    parser.add_argument("--top", type=int, default=0,
                        help="show only the N worst fingerprints")
    parser.add_argument("--json", action="store_true",
                        help="emit the aggregation as JSON instead of text")
    args = parser.parse_args(argv)
    try:
        records = load_records(args.path)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.drift_only:
        records = [r for r in records if r.drift]
    groups = aggregate_by_fingerprint(records)
    if args.top > 0:
        groups = groups[:args.top]
    if args.json:
        print(json.dumps(groups, indent=2, sort_keys=True))
    else:
        print(render_aggregate(groups))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
