"""Unit tests for the repro.obs counter/span primitives."""

import time

from repro.obs import MetricBag, NodeMetrics, span
from repro.obs.metrics import EXEC_COUNTER_FIELDS, SGB_COUNTER_FIELDS


class TestMetricBag:
    def test_empty_bag_is_falsy(self):
        bag = MetricBag()
        assert not bag
        assert bag.as_dict() == {}

    def test_incr_and_get(self):
        bag = MetricBag()
        bag.incr("points")
        bag.incr("points", 4)
        assert bag.get("points") == 5
        assert bag.get("missing") == 0
        assert bag.get("missing", -1) == -1
        assert bag

    def test_timings_suffixed_in_as_dict(self):
        bag = MetricBag()
        bag.add_time("ingest", 0.25)
        bag.add_time("ingest", 0.25)
        assert bag.time("ingest") == 0.5
        assert bag.as_dict() == {"ingest_s": 0.5}

    def test_merge_sums_counters_and_timings(self):
        a = MetricBag()
        a.incr("candidates", 3)
        a.add_time("probe", 1.0)
        b = MetricBag()
        b.incr("candidates", 2)
        b.incr("points")
        b.add_time("probe", 0.5)
        a.merge(b)
        assert a.get("candidates") == 5
        assert a.get("points") == 1
        assert a.time("probe") == 1.5

    def test_span_context_manager_accumulates(self):
        bag = MetricBag()
        with bag.span("work"):
            time.sleep(0.001)
        assert bag.time("work") > 0

    def test_module_span_tolerates_none_bag(self):
        # The None-bag span is the zero-overhead path operators use when
        # uninstrumented; it must be a no-op, not an error.
        with span(None, "work"):
            pass
        bag = MetricBag()
        with span(bag, "work"):
            pass
        assert "work_s" in bag.as_dict()


class TestCounterVocabulary:
    def test_sgb_fields_match_stream_stats(self):
        # StreamStats and the batch MetricBag share one field vocabulary.
        from repro.streaming.stats import StreamStats

        stats = StreamStats()
        for field in SGB_COUNTER_FIELDS:
            assert hasattr(stats, field)

    def test_exec_fields_disjoint_from_sgb_fields(self):
        assert not set(EXEC_COUNTER_FIELDS) & set(SGB_COUNTER_FIELDS)


class TestNodeMetrics:
    def test_record_counts_rows_and_loops(self):
        nm = NodeMetrics()
        assert list(nm.record(iter([(1,), (2,), (3,)]))) == [(1,), (2,), (3,)]
        assert nm.rows_out == 3
        assert nm.loops == 1
        list(nm.record(iter([(4,)])))
        assert nm.rows_out == 4
        assert nm.loops == 2

    def test_record_times_producer_not_consumer(self):
        def rows():
            yield (1,)
            yield (2,)

        nm = NodeMetrics()
        for _ in nm.record(rows()):
            time.sleep(0.01)  # consumer delay must not be charged
        assert nm.time_s < 0.01

    def test_as_dict_omits_empty_counters(self):
        nm = NodeMetrics()
        list(nm.record(iter([])))
        d = nm.as_dict()
        assert d["rows"] == 0
        assert d["loops"] == 1
        assert "counters" not in d
        nm.bag.incr("rows_skipped_null")
        assert nm.as_dict()["counters"] == {"rows_skipped_null": 1}
