"""The Similarity Group-By executor node (paper §8.2).

Grouping attributes must be numeric; DATE attributes are supported by
mapping them to their ordinal day number, so ``WITHIN 7`` over a date
column means "within a week".

This is the engine-integrated counterpart of the modified hash-aggregate
node the paper adds to PostgreSQL: it consumes its child like a normal
aggregate, but groups rows with :class:`~repro.core.sgb_all.SGBAllOperator`
or :class:`~repro.core.sgb_any.SGBAnyOperator` over the (multi-dimensional)
grouping attributes instead of an equality hash table.

Like PostgreSQL's version, the ELIMINATE / FORM-NEW-GROUP semantics can only
produce final groups after the whole input is seen, so rows are spooled in a
tuple store (a Python list here) and aggregated once the operator finalizes.
Output rows contain the aggregate results only — a raw grouping attribute is
not constant within a similarity group, so referencing one outside an
aggregate is a planning error (caught upstream).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import datetime as _dt
import decimal as _decimal
import os

from repro import kernels
from repro.core.around import sgb_around_nd
from repro.core.parallel import (
    fold_obs_payload,
    partition_seed,
    resolve_workers,
    run_partitions,
)
from repro.core.sgb_1d import sgb_around, sgb_segment
from repro.core.sgb_all import SGBAllOperator
from repro.core.sgb_any import SGBAnyOperator
from repro.engine.executor.aggregate import AggSpec, build_agg_specs
from repro.engine.executor.base import PhysicalOperator
from repro.engine.schema import Column, Schema
from repro.engine.types import ANY
from repro.errors import ExecutionError
from repro.obs.trace import maybe_span
from repro.sql.ast_nodes import AggCall, BindContext, Expr

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.stats.chooser import SGBChoice


def _coordinate(value):
    """Numeric coordinate for a grouping-attribute value.

    Dates map to ordinal days (so ε is measured in days) and ``Decimal``
    values are numeric like any other; bools are rejected along with
    every other non-numeric type — with a typed :class:`ExecutionError`,
    so grouping-attribute failures stay inside the engine's error
    taxonomy wherever :func:`_coordinate` is called from.
    """
    if isinstance(value, _dt.date):
        return float(value.toordinal())
    if isinstance(value, _decimal.Decimal):
        return float(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"not a numeric grouping attribute: {value!r}")
    return float(value)


class SGBConfig:
    """Execution knobs for the SGB node (set on the Database).

    ``all_strategy`` / ``any_strategy`` default to ``"auto"``: the
    planner's statistics-driven chooser picks the cheapest strategy per
    query (see :mod:`repro.stats.chooser`).  A concrete strategy name is
    an override that always wins.

    ``parallel`` dispatches independent PARTITION BY partitions to a
    process pool: ``None`` (default) lets the chooser decide, ``0``/``1``
    force serial, ``n > 1`` a pool of ``n`` workers, negative one worker
    per CPU.  Results are bit-identical to serial execution (see
    :mod:`repro.core.parallel`).

    ``trace`` is an optional :class:`~repro.obs.trace.Tracer`; when set
    (the Database installs its tracer here when tracing is on), the SGB
    node emits strategy-phase and per-partition spans, and propagates
    trace context into parallel worker processes.

    ``profile`` is an optional running
    :class:`~repro.obs.profile.SamplingProfiler`; parallel dispatch uses
    it to ship a profile context (interval + current span path) into
    worker processes so their samples fold back into one flamegraph.
    """

    def __init__(self, all_strategy: str = "auto", any_strategy: str = "auto",
                 tiebreak: str = "random", seed: int = 0,
                 parallel: Optional[int] = None, trace=None, profile=None):
        self.all_strategy = all_strategy
        self.any_strategy = any_strategy
        self.tiebreak = tiebreak
        self.seed = seed
        self.parallel = parallel
        self.trace = trace
        self.profile = profile


class SGBAggregate(PhysicalOperator):
    """Similarity aggregation: mode 'all' (with an overlap clause) or 'any'."""

    def __init__(self, child: PhysicalOperator, key_exprs: Sequence[Expr],
                 mode: str, metric: str, eps: float, on_overlap: str,
                 agg_calls: Sequence[AggCall],
                 ctx_factory: Callable[[Schema], BindContext],
                 config: SGBConfig,
                 partition_exprs: Sequence[Expr] = ()):
        if mode not in ("all", "any"):
            raise ExecutionError(f"unknown SGB mode {mode!r}")
        self.child = child
        self.mode = mode
        self.metric = metric
        self.eps = eps
        self.on_overlap = on_overlap
        self.config = config
        configured = (
            config.all_strategy if mode == "all" else config.any_strategy
        )
        #: Resolved execution decisions.  Construction falls back to the
        #: "index" default for an ``"auto"`` config; the planner upgrades
        #: them via :meth:`apply_choice` once statistics are consulted.
        self.strategy = configured if configured != "auto" else "index"
        self.workers_hint: int = 0 if config.parallel is None else (
            config.parallel
        )
        self.choice: "Optional[SGBChoice]" = None
        ctx = ctx_factory(child.schema)
        self._key_exprs = list(key_exprs)
        self._partition_exprs = list(partition_exprs)
        self._key_fns = [e.bind(ctx) for e in key_exprs]
        self._partition_fns = [e.bind(ctx) for e in partition_exprs]
        self._specs: List[AggSpec] = build_agg_specs(agg_calls, ctx)
        columns = [Column(f"__part{i}", ANY)
                   for i in range(len(partition_exprs))]
        columns += [Column(f"__agg{i}", ANY) for i in range(len(agg_calls))]
        self.schema = Schema(columns)

    def apply_choice(self, choice: "SGBChoice") -> None:
        """Install the planner's resolved strategy / parallel decision.

        Kept as node-level fields (the shared :class:`SGBConfig` is never
        mutated, so concurrent queries with different statistics cannot
        race each other's choices).  All strategies produce bit-identical
        memberships, so this only moves time around.
        """
        self.strategy = choice.strategy
        self.workers_hint = choice.parallel
        self.choice = choice

    def _partition_seed(self, pkey: tuple) -> int:
        """Deterministic per-partition RNG seed (see
        :func:`repro.core.parallel.partition_seed` for the rationale —
        it is also what makes partitions safe to run in worker
        processes)."""
        return partition_seed(self.config.seed, pkey)

    def _operator_kwargs(self, pkey: tuple) -> dict:
        """Picklable constructor arguments for one partition's operator."""
        if self.mode == "all":
            return dict(
                eps=self.eps,
                metric=self.metric,
                on_overlap=self.on_overlap,
                strategy=self.strategy,
                tiebreak=self.config.tiebreak,
                seed=self._partition_seed(pkey),
            )
        return dict(
            eps=self.eps,
            metric=self.metric,
            strategy=self.strategy,
        )

    @property
    def _active_tracer(self):
        """The node's tracer: ``attach(plan, tracer=)`` wins, then the
        config-level tracer the Database installs (``SGBConfig.trace``)."""
        return self._tracer if self._tracer is not None else self.config.trace

    def _make_operator(self, pkey: tuple = ()):
        bag = self._obs.bag if self._obs is not None else None
        tracer = self._active_tracer
        if self.mode == "all":
            return SGBAllOperator(metrics=bag, tracer=tracer,
                                  **self._operator_kwargs(pkey))
        return SGBAnyOperator(metrics=bag, tracer=tracer,
                              **self._operator_kwargs(pkey))

    def _spool_partitions(self) -> Tuple[Dict[tuple, tuple], List[tuple]]:
        """Partition child rows by the equality keys; §8.2 tuple store.

        Without a PARTITION BY clause there is exactly one partition.
        """
        partitions: Dict[tuple, tuple] = {}
        partition_order: List[tuple] = []
        key_fns = self._key_fns
        partition_fns = self._partition_fns
        bag = self._obs.bag if self._obs is not None else None
        for row in self.child:
            coords = tuple(f(row) for f in key_fns)
            if any(c is None for c in coords):
                # NULL grouping attributes cannot satisfy a distance
                # predicate; such rows are excluded from similarity grouping
                # (diverges from vanilla GROUP BY — see docs/sql_dialect.md).
                if bag is not None:
                    bag.incr("rows_skipped_null")
                continue
            try:
                point = tuple(_coordinate(c) for c in coords)
            except (TypeError, ValueError):
                raise ExecutionError(
                    f"similarity grouping attributes must be numeric, "
                    f"got {coords!r}"
                ) from None
            pkey = tuple(f(row) for f in partition_fns)
            bucket = partitions.get(pkey)
            if bucket is None:
                bucket = ([], [])  # (points, spooled rows — §8.2 store)
                partitions[pkey] = bucket
                partition_order.append(pkey)
            bucket[0].append(point)
            bucket[1].append(row)
            if bag is not None:
                bag.incr("rows_spooled")
        return partitions, partition_order

    def _labels_parallel(
        self, partitions, partition_order, workers: int
    ) -> List[List[int]]:
        """Group every partition on a process pool; merge worker payloads.

        Per-partition seeds make the labels bit-identical to the serial
        loop; each worker collects its own MetricBag (only when the parent
        has one attached) whose counters, timings, and latency histograms
        are folded back here so EXPLAIN ANALYZE reports the same totals
        either way.  With tracing on, the current trace context
        ``(trace_id, this node's span id)`` is propagated into every
        worker, whose partition/phase spans come back already parented
        onto it and are ingested into the parent tracer.
        """
        bag = self._obs.bag if self._obs is not None else None
        tracer = self._active_tracer
        profiler = self.config.profile
        if profiler is not None and not profiler.running:
            profiler = None
        profile_context = None
        if profiler is not None:
            from repro.obs.profile import span_prefix_of

            # Workers prepend the dispatch-side span path to every sample
            # so their stacks nest under this node in the folded profile.
            profile_context = (profiler.interval_s, span_prefix_of(tracer))
        tasks = [
            (self.mode, partitions[pkey][0], self._operator_kwargs(pkey))
            for pkey in partition_order
        ]
        results = run_partitions(
            tasks,
            workers,
            backend=kernels.active_backend(),
            want_metrics=bag is not None,
            trace_context=tracer.context() if tracer is not None else None,
            cancel=self._cancel,
            profile_context=profile_context,
        )
        label_lists: List[List[int]] = []
        for labels, obs_payload in results:
            # Folding worker payloads is per-partition work with no row
            # crossing a node edge; re-check the token between folds.
            self._checkpoint(0)
            label_lists.append(labels)
            fold_obs_payload(obs_payload, bag=bag, tracer=tracer,
                             profiler=profiler)
        return label_lists

    def _execute(self) -> Iterator[tuple]:
        tracer = self._active_tracer
        with maybe_span(tracer, "spool") as sp:
            partitions, partition_order = self._spool_partitions()
            sp.set(partitions=len(partition_order))
        workers = resolve_workers(self.workers_hint)
        label_lists: Optional[List[List[int]]] = None
        if workers > 1 and len(partition_order) > 1:
            with maybe_span(tracer, "parallel_dispatch", workers=workers,
                            partitions=len(partition_order)):
                label_lists = self._labels_parallel(
                    partitions, partition_order, workers
                )
        specs = self._specs
        for i, pkey in enumerate(partition_order):
            if self._cancel is not None:
                # Partition boundary: grouping one partition is the
                # longest stretch with no iteration boundary to check at.
                self._cancel.check()
            points, spool = partitions[pkey]
            if label_lists is not None:
                labels = label_lists[i]
            else:
                # Same span shape as the worker-side run_partition, so a
                # serial and a parallel execution of one query produce
                # identical trace trees (modulo pids).
                with maybe_span(tracer, "partition", partition=i,
                                points=len(points), mode=self.mode,
                                pid=os.getpid()):
                    operator = self._make_operator(pkey)
                    operator.add_many(points)
                    labels = operator.finalize().labels
            group_accs: dict = {}
            order: List[int] = []
            for j, (row, label) in enumerate(zip(spool, labels)):
                # No row leaves this node until the whole partition is
                # aggregated; without a mid-loop checkpoint a cancel or
                # deadline fired here is only seen after the grind.
                self._checkpoint(j)
                if label < 0:  # eliminated by the ON-OVERLAP clause
                    continue
                accs = group_accs.get(label)
                if accs is None:
                    accs = [s.new_accumulator() for s in specs]
                    group_accs[label] = accs
                    order.append(label)
                for spec, acc in zip(specs, accs):
                    spec.step(acc, row)
            for label in sorted(order):
                yield pkey + tuple(a.final() for a in group_accs[label])

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def describe(self) -> str:
        clause = f" on-overlap={self.on_overlap}" if self.mode == "all" else ""
        suffix = f" strategy={self.strategy}"
        if self.choice is not None:
            suffix += f"/{self.choice.source}"
        return (
            f"SimilarityGroupBy (distance-to-{self.mode} {self.metric} "
            f"within {self.eps}{clause})" + suffix
        )


class SGBAroundAggregate(PhysicalOperator):
    """Supervised multi-dimensional grouping around fixed centres."""

    def __init__(self, child: PhysicalOperator, key_exprs: Sequence[Expr],
                 centers: Sequence[Sequence[float]], metric: str,
                 radius, agg_calls: Sequence[AggCall],
                 ctx_factory: Callable[[Schema], BindContext]):
        self.child = child
        self.centers = [tuple(c) for c in centers]
        self.metric = metric
        self.radius = radius
        ctx = ctx_factory(child.schema)
        self._key_fns = [e.bind(ctx) for e in key_exprs]
        self._specs: List[AggSpec] = build_agg_specs(agg_calls, ctx)
        self.schema = Schema(
            [Column(f"__agg{i}", ANY) for i in range(len(agg_calls))]
        )

    def _execute(self) -> Iterator[tuple]:
        spool: List[tuple] = []
        points: List[tuple] = []
        key_fns = self._key_fns
        bag = self._obs.bag if self._obs is not None else None
        for row in self.child:
            coords = tuple(f(row) for f in key_fns)
            if any(c is None for c in coords):
                if bag is not None:
                    bag.incr("rows_skipped_null")
                continue
            try:
                points.append(tuple(_coordinate(c) for c in coords))
            except (TypeError, ValueError):
                raise ExecutionError(
                    f"grouping attributes must be numeric, got {coords!r}"
                ) from None
            spool.append(row)
            if bag is not None:
                bag.incr("rows_spooled")
        result = sgb_around_nd(points, self.centers, eps=self.radius,
                               metric=self.metric)
        specs = self._specs
        group_accs: dict = {}
        order: List[int] = []
        for j, (row, label) in enumerate(zip(spool, result.labels)):
            self._checkpoint(j)  # buffering loop: no per-row node edge
            if label < 0:
                continue
            accs = group_accs.get(label)
            if accs is None:
                accs = [s.new_accumulator() for s in specs]
                group_accs[label] = accs
                order.append(label)
            for spec, acc in zip(specs, accs):
                spec.step(acc, row)
        for label in sorted(order):
            yield tuple(a.final() for a in group_accs[label])

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def describe(self) -> str:
        within = f" within {self.radius}" if self.radius is not None else ""
        return (
            f"SimilarityGroupAround ({len(self.centers)} centres, "
            f"{self.metric}{within})"
        )


class SGB1DAggregate(PhysicalOperator):
    """The one-dimensional similarity aggregation node (ICDE 2009 clauses).

    ``kind='segment'`` implements MAXIMUM-ELEMENT-SEPARATION (with optional
    MAXIMUM-GROUP-DIAMETER); ``kind='around'`` implements GROUP AROUND a
    list of central points.  Rows whose value falls outside every group
    (AROUND with a diameter bound) are excluded from the output, like
    ELIMINATE in the multi-dimensional operator.
    """

    def __init__(self, child: PhysicalOperator, key_expr: Expr, kind: str,
                 agg_calls: Sequence[AggCall],
                 ctx_factory: Callable[[Schema], BindContext],
                 separation: float = 0.0,
                 diameter: Optional[float] = None,
                 centers: Sequence[float] = ()):
        if kind not in ("segment", "around"):
            raise ExecutionError(f"unknown 1-D SGB kind {kind!r}")
        self.child = child
        self.kind = kind
        self.separation = separation
        self.diameter = diameter
        self.centers = list(centers)
        ctx = ctx_factory(child.schema)
        self._key_fn = key_expr.bind(ctx)
        self._specs: List[AggSpec] = build_agg_specs(agg_calls, ctx)
        self.schema = Schema(
            [Column(f"__agg{i}", ANY) for i in range(len(agg_calls))]
        )

    def _execute(self) -> Iterator[tuple]:
        spool: List[tuple] = []
        values: List[float] = []
        key_fn = self._key_fn
        bag = self._obs.bag if self._obs is not None else None
        for row in self.child:
            value = key_fn(row)
            if value is None:
                if bag is not None:
                    bag.incr("rows_skipped_null")
                continue
            try:
                values.append(_coordinate(value))
            except (TypeError, ValueError):
                raise ExecutionError(
                    f"1-D similarity grouping attribute must be numeric, "
                    f"got {value!r}"
                ) from None
            spool.append(row)
            if bag is not None:
                bag.incr("rows_spooled")
        if self.kind == "segment":
            result = sgb_segment(values, self.separation, self.diameter)
        else:
            result = sgb_around(values, self.centers, self.diameter)

        specs = self._specs
        group_accs: dict = {}
        order: List[int] = []
        for j, (row, label) in enumerate(zip(spool, result.labels)):
            self._checkpoint(j)  # buffering loop: no per-row node edge
            if label < 0:
                continue
            accs = group_accs.get(label)
            if accs is None:
                accs = [s.new_accumulator() for s in specs]
                group_accs[label] = accs
                order.append(label)
            for spec, acc in zip(specs, accs):
                spec.step(acc, row)
        for label in sorted(order):
            yield tuple(a.final() for a in group_accs[label])

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def describe(self) -> str:
        if self.kind == "segment":
            extra = f"separation={self.separation}"
            if self.diameter is not None:
                extra += f" diameter={self.diameter}"
        else:
            extra = f"around {len(self.centers)} centre(s)"
            if self.diameter is not None:
                extra += f" diameter={self.diameter}"
        return f"SimilarityGroupBy1D ({extra})"
