# sgblint: module=repro.obs.fixture_resource_bad
"""SGB010 true positives: resources without exception-safe release."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import memory_tracking
from repro.obs.profile import SamplingProfiler


def measure(samples):
    tracker = memory_tracking()  # never entered: measures nothing
    total = sum(samples)
    return total


def run_tasks(tasks):
    pool = ThreadPoolExecutor(max_workers=2)
    results = [pool.submit(str, t) for t in tasks]
    pool.shutdown()  # released, but not in a finally
    return results


def sample(fn):
    prof = SamplingProfiler()
    fn()
    return None  # prof never released, never escapes


class Holder:
    def __init__(self):
        self._guard = threading.Lock()
        self._value = 0

    def lock_forever(self):
        self._guard.acquire()
        self._value += 1  # no release on any path

    def lock_plain(self):
        self._guard.acquire()
        self._value += 1
        self._guard.release()  # an exception above leaks the lock
