"""Intraprocedural flow pass: lock-held sets and resource lifetimes.

For each analyzed function this computes, by a sequential walk over the
statement list (no full CFG — straight-line + ``with``/``try`` nesting
covers every pattern in this codebase):

* :attr:`FunctionFlow.attr_accesses` — every ``self.<attr>`` read or
  write, annotated with the frozenset of lock names held at that point
  (``{"_lock"}``, ``{"_lock", "_metrics_lock"}``, …).
* :attr:`FunctionFlow.call_sites_held` — locks held at each call
  expression, so interprocedural rules can push held-sets into callees.
* :attr:`FunctionFlow.acquire_order` — ordered (outer, inner) pairs
  observed when a second lock is taken while one is already held; rule
  SGB007 cross-checks these pairs project-wide for inversions.
* :attr:`FunctionFlow.leaves_held` — locks a function acquires and does
  *not* release on the path to return (an "acquiring helper" such as
  ``Database._acquire_statement_lock``); callers inherit these into
  their held-set after the call.
* :attr:`FunctionFlow.acquires` — explicit ``.acquire()``/``.start()``
  style acquisitions with a flag for whether a matching release is
  post-dominated by a ``finally`` (SGB010's raw material).

Lock names are ``self.<attr>`` attributes whose class assigns them a
``threading.Lock()``/``RLock()`` (from :attr:`ClassSymbol.lock_attrs`),
plus any ``self._*lock*``-named attribute used in a ``with`` — the
naming convention carries the intent even when the constructor is not
seen (fixtures, condition variables).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.symbols import ClassSymbol, FunctionSymbol, SymbolTable


def _self_attr(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _looks_like_lock(attr: str) -> bool:
    return "lock" in attr.lower() or "cond" in attr.lower()


class AttrAccess:
    """One ``self.<attr>`` read or write with the locks held there."""

    __slots__ = ("attr", "node", "is_write", "held", "lineno", "col")

    def __init__(self, attr: str, node: ast.AST, is_write: bool,
                 held: FrozenSet[str]):
        self.attr = attr
        self.node = node
        self.is_write = is_write
        self.held = held
        self.lineno = getattr(node, "lineno", 0)
        self.col = getattr(node, "col_offset", 0)


class Acquisition:
    """An explicit ``self.<x>.acquire()`` (or resource ``.start()``)."""

    __slots__ = ("attr", "method", "node", "released_in_finally",
                 "released_anywhere")

    def __init__(self, attr: str, method: str, node: ast.Call):
        self.attr = attr
        self.method = method
        self.node = node
        #: A matching release call appears inside a ``finally`` block
        #: that encloses (or follows) this acquisition.
        self.released_in_finally = False
        #: A matching release appears anywhere later in the function.
        self.released_anywhere = False


class FunctionFlow:
    """Flow facts for one function."""

    __slots__ = ("sym", "lock_attrs", "attr_accesses", "call_sites_held",
                 "acquire_order", "leaves_held", "acquires",
                 "with_lock_lines")

    def __init__(self, sym: FunctionSymbol, lock_attrs: Set[str]):
        self.sym = sym
        #: Lock-attribute universe for the enclosing class.
        self.lock_attrs = set(lock_attrs)
        self.attr_accesses: List[AttrAccess] = []
        #: id(ast.Call) -> frozenset of lock names held at that call.
        self.call_sites_held: Dict[int, FrozenSet[str]] = {}
        self.acquire_order: List[Tuple[str, str, int]] = []
        self.leaves_held: Set[str] = set()
        self.acquires: List[Acquisition] = []
        #: Lines where ``with self.<lock>`` blocks open (guard evidence).
        self.with_lock_lines: List[Tuple[str, int]] = []


_RELEASE_METHODS = frozenset({"release"})


class FlowAnalyzer:
    """Builds :class:`FunctionFlow` for every method of analyzed classes.

    Two passes: pass one computes per-function facts with an empty entry
    held-set; pass two (driven by rules, see
    :meth:`entry_held_for_private_methods` in the project layer) is not
    needed here — ``leaves_held`` summaries are computed in pass one and
    callers consult them when walking their own bodies, so helper-
    acquired locks propagate one level without a fixpoint inside this
    module.
    """

    def __init__(self, table: SymbolTable):
        self.table = table
        self.flows: Dict[str, FunctionFlow] = {}
        # Pre-pass: which functions leave a lock held (acquiring
        # helpers).  Needed before the main walk so callers of
        # ``self._acquire_statement_lock()`` extend their held-set.
        self._leaves_held: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "FlowAnalyzer":
        analyzer = cls(table)
        analyzer._compute_leaves_held()
        for sym in table.functions.values():
            if sym.nested:
                continue
            analyzer.flows[sym.qualname] = analyzer._analyze(sym)
        return analyzer

    # -- pre-pass: acquiring helpers --------------------------------------
    def _compute_leaves_held(self) -> None:
        for sym in self.table.functions.values():
            if sym.nested:
                continue
            held: Set[str] = set()
            acquired: Set[str] = set()
            released: Set[str] = set()
            for node in ast.walk(sym.node):
                if not isinstance(node, ast.Call) or \
                        not isinstance(node.func, ast.Attribute):
                    continue
                lock = _self_attr(node.func.value)
                if lock is None:
                    continue
                if node.func.attr == "acquire":
                    acquired.add(lock)
                elif node.func.attr in _RELEASE_METHODS:
                    released.add(lock)
            held = acquired - released
            if held:
                self._leaves_held[sym.qualname] = held

    # -- per-function walk -------------------------------------------------
    def _analyze(self, sym: FunctionSymbol) -> FunctionFlow:
        cls_sym = self._enclosing_class(sym)
        lock_attrs: Set[str] = set()
        if cls_sym is not None:
            for klass in self.table.mro(cls_sym):
                lock_attrs |= klass.lock_attrs
        flow = FunctionFlow(sym, lock_attrs)
        flow.leaves_held = set(
            self._leaves_held.get(sym.qualname, ()))
        body = sym.node.body  # type: ignore[attr-defined]
        self._walk_block(flow, cls_sym, body, frozenset(), in_finally=[])
        self._pair_releases(flow)
        return flow

    def _enclosing_class(self, sym: FunctionSymbol) -> Optional[ClassSymbol]:
        if sym.cls is None:
            return None
        return self.table.classes.get(f"{sym.module}.{sym.cls}")

    def _is_lock_name(self, flow: FunctionFlow, attr: str) -> bool:
        return attr in flow.lock_attrs or _looks_like_lock(attr)

    def _walk_block(self, flow: FunctionFlow,
                    cls_sym: Optional[ClassSymbol],
                    stmts: List[ast.stmt],
                    held: FrozenSet[str],
                    in_finally: List[List[ast.stmt]]) -> FrozenSet[str]:
        """Walk statements in order, threading the held-set through
        acquire/release calls; returns the held-set at block exit."""
        for stmt in stmts:
            held = self._walk_stmt(flow, cls_sym, stmt, held, in_finally)
        return held

    def _walk_stmt(self, flow: FunctionFlow,
                   cls_sym: Optional[ClassSymbol],
                   stmt: ast.stmt,
                   held: FrozenSet[str],
                   in_finally: List[List[ast.stmt]]) -> FrozenSet[str]:
        if isinstance(stmt, ast.With):
            return self._walk_with(flow, cls_sym, stmt, held, in_finally)
        if isinstance(stmt, ast.Try):
            # The finally body post-dominates the try; remember it so
            # acquisitions inside the try can look for their release.
            new_finally = in_finally + ([stmt.finalbody]
                                        if stmt.finalbody else [])
            inner = self._walk_block(
                flow, cls_sym, stmt.body, held, new_finally)
            for handler in stmt.handlers:
                self._walk_block(flow, cls_sym, handler.body, held,
                                 new_finally)
            if stmt.orelse:
                inner = self._walk_block(
                    flow, cls_sym, stmt.orelse, inner, new_finally)
            if stmt.finalbody:
                inner = self._walk_block(
                    flow, cls_sym, stmt.finalbody, inner, in_finally)
            return inner
        if isinstance(stmt, (ast.If,)):
            self._scan_expr(flow, cls_sym, stmt.test, held)
            after = self._walk_block(
                flow, cls_sym, stmt.body, held, in_finally)
            after_else = self._walk_block(
                flow, cls_sym, stmt.orelse, held, in_finally)
            # Merge conservatively: a lock counts as held after the If
            # only when both branches leave it held.
            return after & after_else if stmt.orelse else held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(flow, cls_sym, stmt.iter, held)
            self._walk_block(flow, cls_sym, stmt.body, held, in_finally)
            self._walk_block(flow, cls_sym, stmt.orelse, held, in_finally)
            return held
        if isinstance(stmt, ast.While):
            held = self._scan_expr_held(flow, cls_sym, stmt.test, held,
                                        in_finally)
            self._walk_block(flow, cls_sym, stmt.body, held, in_finally)
            self._walk_block(flow, cls_sym, stmt.orelse, held, in_finally)
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return held  # nested scopes analyzed separately
        # Plain statement: scan expressions, updating held on
        # acquire/release calls in evaluation order.
        return self._scan_stmt_exprs(flow, cls_sym, stmt, held, in_finally)

    def _walk_with(self, flow: FunctionFlow,
                   cls_sym: Optional[ClassSymbol],
                   stmt: ast.With,
                   held: FrozenSet[str],
                   in_finally: List[List[ast.stmt]]) -> FrozenSet[str]:
        inner = set(held)
        for item in stmt.items:
            expr = item.context_expr
            self._scan_expr(flow, cls_sym, expr, frozenset(inner))
            lock = _self_attr(expr)
            if lock is not None and self._is_lock_name(flow, lock):
                self._record_acquire_order(flow, frozenset(inner), lock,
                                           stmt.lineno)
                flow.with_lock_lines.append((lock, stmt.lineno))
                inner.add(lock)
        self._walk_block(flow, cls_sym, stmt.body, frozenset(inner),
                         in_finally)
        return held  # with releases on exit

    # -- expression scanning ----------------------------------------------
    def _scan_stmt_exprs(self, flow: FunctionFlow,
                         cls_sym: Optional[ClassSymbol],
                         stmt: ast.stmt,
                         held: FrozenSet[str],
                         in_finally: List[List[ast.stmt]]) -> FrozenSet[str]:
        writes: Set[int] = set()
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for node in ast.walk(target):
                    writes.add(id(node))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            for node in ast.walk(stmt.target):
                writes.add(id(node))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for node in ast.walk(target):
                    writes.add(id(node))
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                held = self._handle_call(flow, node, held, in_finally)
                flow.call_sites_held[id(node)] = held
            attr = _self_attr(node)
            if attr is not None and not self._is_lock_name(flow, attr):
                is_write = id(node) in writes or (
                    isinstance(getattr(node, "ctx", None),
                               (ast.Store, ast.Del)))
                flow.attr_accesses.append(
                    AttrAccess(attr, node, is_write, held))
        return held

    def _scan_expr(self, flow: FunctionFlow,
                   cls_sym: Optional[ClassSymbol],
                   expr: ast.expr,
                   held: FrozenSet[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                flow.call_sites_held[id(node)] = held
            attr = _self_attr(node)
            if attr is not None and not self._is_lock_name(flow, attr):
                is_write = isinstance(getattr(node, "ctx", None),
                                      (ast.Store, ast.Del))
                flow.attr_accesses.append(
                    AttrAccess(attr, node, is_write, held))

    def _scan_expr_held(self, flow: FunctionFlow,
                        cls_sym: Optional[ClassSymbol],
                        expr: ast.expr,
                        held: FrozenSet[str],
                        in_finally: List[List[ast.stmt]]) -> FrozenSet[str]:
        """Like :meth:`_scan_expr` but lets acquire calls extend the
        held-set — ``while not self._lock.acquire(timeout=...):`` loops
        hold the lock once the condition succeeds."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                held = self._handle_call(flow, node, held, in_finally)
                flow.call_sites_held[id(node)] = held
        return held

    def _handle_call(self, flow: FunctionFlow, node: ast.Call,
                     held: FrozenSet[str],
                     in_finally: List[List[ast.stmt]]) -> FrozenSet[str]:
        func = node.func
        if isinstance(func, ast.Attribute):
            lock = _self_attr(func.value)
            if lock is not None and self._is_lock_name(flow, lock):
                if func.attr == "acquire":
                    self._record_acquire_order(flow, held, lock,
                                               node.lineno)
                    acq = Acquisition(lock, "acquire", node)
                    acq.released_in_finally = self._finally_releases(
                        in_finally, lock)
                    flow.acquires.append(acq)
                    return held | {lock}
                if func.attr in _RELEASE_METHODS:
                    return held - {lock}
            # Calling an acquiring helper extends the held-set: the
            # helper's ``leaves_held`` summary names the lock attrs.
            if isinstance(func.value, ast.Name) and \
                    func.value.id == "self" and flow.sym.cls is not None:
                helper = f"{flow.sym.module}.{flow.sym.cls}.{func.attr}"
                extra = self._leaves_held.get(helper)
                if extra:
                    return held | frozenset(extra)
        return held

    def _record_acquire_order(self, flow: FunctionFlow,
                              held: FrozenSet[str], lock: str,
                              lineno: int) -> None:
        for outer in held:
            if outer != lock:
                flow.acquire_order.append((outer, lock, lineno))

    def _finally_releases(self, in_finally: List[List[ast.stmt]],
                          lock: str) -> bool:
        for finalbody in in_finally:
            for node in ast.walk(ast.Module(body=finalbody,
                                            type_ignores=[])):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _RELEASE_METHODS
                        and _self_attr(node.func.value) == lock):
                    return True
        return False

    # -- post: pair explicit acquires with later releases ------------------
    def _pair_releases(self, flow: FunctionFlow) -> None:
        released: Set[str] = set()
        #: (lock, lineno of the try) for releases inside a finalbody —
        #: covers the canonical ``acquire(); try: ... finally: release()``
        #: idiom where the acquire precedes (is not enclosed by) the Try.
        finally_released: List[Tuple[str, int]] = []
        for node in ast.walk(flow.sym.node):
            if isinstance(node, ast.Try) and node.finalbody:
                for sub in ast.walk(ast.Module(body=node.finalbody,
                                               type_ignores=[])):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _RELEASE_METHODS):
                        attr = _self_attr(sub.func.value)
                        if attr is not None:
                            finally_released.append((attr, node.lineno))
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS):
                attr = _self_attr(node.func.value)
                if attr is not None:
                    released.add(attr)
        for acq in flow.acquires:
            acq.released_anywhere = acq.attr in released
            if not acq.released_in_finally:
                acq.released_in_finally = any(
                    attr == acq.attr and lineno >= acq.node.lineno
                    for attr, lineno in finally_released)


def guarded_fraction(accesses: List[AttrAccess],
                     lock: str) -> Tuple[int, int]:
    """(guarded, total) counts of accesses holding ``lock``."""
    guarded = sum(1 for a in accesses if lock in a.held)
    return guarded, len(accesses)
