"""Regression tests for the SGB006 raise-site conversions.

Every raise in ``repro.engine`` / ``repro.sql`` that used to throw a bare
``ValueError`` now throws a :mod:`repro.errors` subclass, so callers that
catch ``ReproError`` (shells, services) see every library failure.  One
test per converted site, each asserting both the taxonomy type and — where
the subclass still derives from ``ValueError`` — backward compatibility.
"""

import pytest

from repro.engine.executor.relational import (
    Concat,
    HashJoin,
    HashLeftJoin,
    SimilarityJoin,
)
from repro.engine.database import Database
from repro.engine.schema import Column, Schema
from repro.engine.executor.scans import ValuesScan
from repro.errors import (
    InvalidParameterError,
    ParseError,
    PlanningError,
    ReproError,
    SQLError,
)
from repro.sql.ast_nodes import BindContext, ColumnRef, Select, Union


def ctx_factory(schema):
    return BindContext(schema)


def values(rows, *cols):
    return ValuesScan(rows, Schema([Column(c, "any", "v") for c in cols]))


class TestRelationalPlanInvariants:
    """relational.py: plan-construction failures are PlanningError."""

    def test_hash_join_empty_keys(self):
        with pytest.raises(PlanningError):
            HashJoin(values([], "a"), values([], "b"), [], [], None,
                     ctx_factory)

    def test_hash_join_mismatched_keys(self):
        with pytest.raises(PlanningError):
            HashJoin(
                values([], "a"), values([], "b"),
                [ColumnRef("a")], [], None, ctx_factory,
            )

    def test_hash_left_join_empty_keys(self):
        with pytest.raises(PlanningError):
            HashLeftJoin(values([], "a"), values([], "b"), [], [], None,
                         ctx_factory)

    def test_similarity_join_needs_2d(self):
        with pytest.raises(PlanningError):
            SimilarityJoin(
                values([], "x"), values([], "y"),
                [ColumnRef("x")], [ColumnRef("y")],
                1.0, "l2", None, ctx_factory,
            )

    def test_concat_needs_inputs(self):
        with pytest.raises(PlanningError):
            Concat([])

    def test_concat_mismatched_arity(self):
        with pytest.raises(PlanningError):
            Concat([values([], "a"), values([], "b", "c")])

    def test_planning_error_is_repro_error(self):
        with pytest.raises(ReproError):
            Concat([])


class TestScalarResult:
    """database.py: Result.scalar() misuse is InvalidParameterError."""

    @pytest.fixture()
    def db(self):
        db = Database()
        db.execute("CREATE TABLE t (a int, b int)")
        db.execute("INSERT INTO t VALUES (1, 2), (3, 4)")
        return db

    def test_scalar_requires_1x1_taxonomy(self, db):
        with pytest.raises(InvalidParameterError):
            db.query("SELECT a, b FROM t").scalar()

    def test_scalar_still_a_value_error(self, db):
        # InvalidParameterError subclasses ValueError, so pre-existing
        # `except ValueError` callers keep working.
        with pytest.raises(ValueError):
            db.query("SELECT a, b FROM t").scalar()


class TestUnionAst:
    """ast_nodes.py: malformed Union construction is ParseError."""

    def _select(self):
        return Select(items=[], from_items=[])

    def test_union_flag_arity_checked(self):
        with pytest.raises(ParseError):
            Union([self._select(), self._select()], all_flags=[])

    def test_union_error_is_sql_error(self):
        with pytest.raises(SQLError):
            Union([self._select()], all_flags=[True])
