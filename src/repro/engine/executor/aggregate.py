"""Hash-based standard GROUP BY (the operator the SGB node extends).

Output rows are ``(key values…, aggregate results…)`` in the internal
schema laid down by the planner; a Project above maps them onto the select
list via :class:`~repro.sql.ast_nodes.PostAggRef` rewrites.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from repro.engine.aggregates import Accumulator, make_accumulator
from repro.engine.executor.base import PhysicalOperator
from repro.engine.schema import Column, Schema
from repro.engine.types import ANY
from repro.sql.ast_nodes import AggCall, BindContext, Expr


class AggSpec:
    """A planned aggregate call with bound argument evaluators."""

    def __init__(self, call: AggCall, arg_fns: Sequence[Callable[[tuple], Any]]):
        self.call = call
        self.arg_fns = list(arg_fns)

    def new_accumulator(self) -> Accumulator:
        return make_accumulator(self.call.name, len(self.arg_fns),
                                self.call.distinct)

    def step(self, acc: Accumulator, row: tuple) -> None:
        acc.step(tuple(f(row) for f in self.arg_fns))


def build_agg_specs(
    calls: Sequence[AggCall], ctx: BindContext
) -> List[AggSpec]:
    specs = []
    for call in calls:
        arg_fns = [a.bind(ctx) for a in call.args]
        # Validate the aggregate name/arity now rather than mid-execution.
        make_accumulator(call.name, len(arg_fns), call.distinct)
        specs.append(AggSpec(call, arg_fns))
    return specs


class HashAggregate(PhysicalOperator):
    """Equality GROUP BY; with no keys, a single group over all input
    (and exactly one output row even for empty input, per SQL)."""

    def __init__(self, child: PhysicalOperator, key_exprs: Sequence[Expr],
                 agg_calls: Sequence[AggCall],
                 ctx_factory: Callable[[Schema], BindContext]):
        self.child = child
        ctx = ctx_factory(child.schema)
        self._key_exprs = list(key_exprs)
        self._key_fns = [e.bind(ctx) for e in key_exprs]
        self._specs = build_agg_specs(agg_calls, ctx)
        self._n_keys = len(key_exprs)
        columns = [Column(f"__key{i}", ANY) for i in range(len(key_exprs))]
        columns += [Column(f"__agg{i}", ANY) for i in range(len(agg_calls))]
        self.schema = Schema(columns)

    def _execute(self) -> Iterator[tuple]:
        groups: Dict[tuple, List[Accumulator]] = {}
        order: List[tuple] = []
        key_fns = self._key_fns
        specs = self._specs
        for row in self.child:
            key = tuple(f(row) for f in key_fns)
            accs = groups.get(key)
            if accs is None:
                accs = [s.new_accumulator() for s in specs]
                groups[key] = accs
                order.append(key)
            for spec, acc in zip(specs, accs):
                spec.step(acc, row)
        if not groups and self._n_keys == 0:
            # SQL scalar aggregate over empty input: one row of finals.
            accs = [s.new_accumulator() for s in specs]
            yield tuple(a.final() for a in accs)
            return
        for key in order:
            yield key + tuple(a.final() for a in groups[key])

    def children(self) -> Tuple[PhysicalOperator, ...]:
        return (self.child,)

    def describe(self) -> str:
        return (
            f"HashAggregate (keys={self._n_keys}, aggs={len(self._specs)})"
        )
