"""K-means tests."""

import random

import pytest

from repro.clustering.kmeans import kmeans
from repro.errors import InvalidParameterError


def two_blobs(n_per=50, seed=0):
    rng = random.Random(seed)
    a = [(rng.gauss(0, 0.3), rng.gauss(0, 0.3)) for _ in range(n_per)]
    b = [(rng.gauss(10, 0.3), rng.gauss(10, 0.3)) for _ in range(n_per)]
    return a + b


class TestValidation:
    def test_empty_points(self):
        with pytest.raises(InvalidParameterError):
            kmeans([], 1)

    def test_k_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            kmeans([(0, 0)], 2)
        with pytest.raises(InvalidParameterError):
            kmeans([(0, 0)], 0)

    def test_unknown_init(self):
        with pytest.raises(InvalidParameterError):
            kmeans([(0, 0), (1, 1)], 1, init="grid")


class TestClustering:
    def test_separates_two_blobs(self):
        pts = two_blobs()
        res = kmeans(pts, 2, seed=1)
        first_half = set(res.labels[:50])
        second_half = set(res.labels[50:])
        assert len(first_half) == 1 and len(second_half) == 1
        assert first_half != second_half

    def test_centroids_near_blob_centers(self):
        res = kmeans(two_blobs(), 2, seed=1)
        centers = sorted(res.centroids)
        assert abs(centers[0][0] - 0) < 0.5 and abs(centers[1][0] - 10) < 0.5

    def test_k_equals_n(self):
        pts = [(0, 0), (5, 5), (9, 1)]
        res = kmeans(pts, 3, seed=0)
        assert sorted(res.labels) == [0, 1, 2]
        assert res.inertia == pytest.approx(0.0)

    def test_k_one(self):
        pts = [(0, 0), (2, 0), (4, 0)]
        res = kmeans(pts, 1)
        assert res.labels == [0, 0, 0]
        assert res.centroids[0] == pytest.approx((2.0, 0.0))

    def test_deterministic_given_seed(self):
        pts = two_blobs()
        a = kmeans(pts, 4, seed=7)
        b = kmeans(pts, 4, seed=7)
        assert a.labels == b.labels
        assert a.centroids == b.centroids

    def test_duplicate_points(self):
        res = kmeans([(1, 1)] * 10, 2, seed=0)
        assert len(res.labels) == 10
        assert res.inertia == pytest.approx(0.0)

    def test_assignment_is_nearest_centroid(self):
        """Lloyd invariant at convergence: each point is assigned to its
        nearest centroid."""
        pts = two_blobs(seed=3)
        res = kmeans(pts, 3, seed=2)

        def sq(p, q):
            return (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2

        for p, lb in zip(pts, res.labels):
            best = min(range(3), key=lambda c: sq(p, res.centroids[c]))
            assert sq(p, res.centroids[lb]) == pytest.approx(
                sq(p, res.centroids[best])
            )

    def test_random_init_works(self):
        res = kmeans(two_blobs(), 2, seed=5, init="random")
        assert len(set(res.labels)) == 2

    def test_inertia_decreases_with_k(self):
        pts = two_blobs(seed=9)
        i1 = kmeans(pts, 1, seed=0).inertia
        i2 = kmeans(pts, 2, seed=0).inertia
        i4 = kmeans(pts, 4, seed=0).inertia
        assert i1 >= i2 >= i4
