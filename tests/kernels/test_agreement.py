"""End-to-end agreement: numpy vs python backends, serial vs parallel.

The contract (docs/architecture.md, "Execution backends"):

* both kernel backends produce identical memberships — bit-identical
  labels, not merely equal partitions, because candidate lists are
  id-ordered under both so even random JOIN-ANY tiebreaks replay;
* the partition-parallel path produces labels identical to serial and
  EXPLAIN ANALYZE counter totals equal to the serial run's.
"""

import random

import pytest

from repro import Database, kernels
from repro.core.api import sgb_all, sgb_any

HAS_NUMPY = "numpy" in kernels.available_backends()
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def _points(n, seed=0, span=10.0):
    rng = random.Random(seed)
    return [(rng.uniform(0, span), rng.uniform(0, span)) for _ in range(n)]


@needs_numpy
class TestBackendAgreement:
    N = 500
    EPS = 0.7

    def _labels(self, backend, fn, **kwargs):
        with kernels.use_backend(backend):
            return fn(_points(self.N, seed=13), self.EPS, **kwargs).labels

    @pytest.mark.parametrize("strategy", [
        "all-pairs", "grid", "index", "kdtree", "rtree-bulk", "hilbert-grid",
    ])
    def test_sgb_any_labels_identical(self, strategy):
        kwargs = dict(strategy=strategy)
        assert self._labels("numpy", sgb_any, **kwargs) == \
            self._labels("python", sgb_any, **kwargs)

    @pytest.mark.parametrize("strategy",
                             ["all-pairs", "bounds-checking", "index"])
    @pytest.mark.parametrize("on_overlap",
                             ["join-any", "eliminate", "form-new-group"])
    def test_sgb_all_labels_identical(self, strategy, on_overlap):
        kwargs = dict(strategy=strategy, on_overlap=on_overlap,
                      tiebreak="random", seed=3)
        assert self._labels("numpy", sgb_all, **kwargs) == \
            self._labels("python", sgb_all, **kwargs)

    @pytest.mark.parametrize("metric", ["l2", "linf", "l1"])
    def test_metrics_agree(self, metric):
        kwargs = dict(strategy="grid", metric=metric)
        assert self._labels("numpy", sgb_any, **kwargs) == \
            self._labels("python", sgb_any, **kwargs)

    def test_sgb_any_structural_counters_identical(self):
        # SGB-Any has no inter-pair early exit, so even the
        # distance_computations counter agrees exactly across backends.
        from repro.core.sgb_any import SGBAnyOperator
        from repro.obs.metrics import MetricBag

        counters = {}
        for backend in ("python", "numpy"):
            with kernels.use_backend(backend):
                bag = MetricBag()
                op = SGBAnyOperator(self.EPS, strategy="grid", metrics=bag)
                op.add_many(_points(self.N, seed=13))
                op.finalize()
            counters[backend] = dict(bag.counters)
        assert counters["numpy"] == counters["python"]


class TestParallelAgreement:
    def _keyed_points(self, n=240, n_parts=5, seed=21):
        rng = random.Random(seed)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]
        keys = [rng.randrange(n_parts) for _ in range(n)]
        return pts, keys

    @pytest.mark.parametrize("mode,kwargs", [
        ("any", dict(strategy="grid")),
        ("all", dict(on_overlap="join-any", tiebreak="random", seed=5)),
        ("all", dict(on_overlap="eliminate")),
    ])
    def test_api_labels_identical_across_workers(self, mode, kwargs):
        pts, keys = self._keyed_points()
        fn = sgb_any if mode == "any" else sgb_all
        serial = fn(pts, 0.5, partitions=keys, parallel=0, **kwargs)
        pooled = fn(pts, 0.5, partitions=keys, parallel=2, **kwargs)
        assert serial.labels == pooled.labels

    def test_partitions_confine_groups(self):
        pts, keys = self._keyed_points()
        result = sgb_any(pts, 2.0, partitions=keys)
        label_key = {}
        for label, key in zip(result.labels, keys):
            if label < 0:
                continue
            assert label_key.setdefault(label, key) == key

    def test_partitions_eliminated_pass_through(self):
        pts, keys = self._keyed_points(n=120)
        result = sgb_all(pts, 0.4, on_overlap="eliminate",
                         partitions=keys, parallel=2)
        unpartitioned_per_key = {}
        for key in set(keys):
            sub = [p for p, k in zip(pts, keys) if k == key]
            unpartitioned_per_key[key] = sgb_all(sub, 0.4,
                                                 on_overlap="eliminate")
        for key, sub_result in unpartitioned_per_key.items():
            mine = [lab for lab, k in zip(result.labels, keys) if k == key]
            assert [m < 0 for m in mine] == \
                [lab < 0 for lab in sub_result.labels]

    def test_partitions_length_mismatch_raises(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            sgb_any([(0, 0), (1, 1)], 1.0, partitions=["a"])


class TestEngineParallelAgreement:
    SQL = ("SELECT k, count(*), avg(x) FROM t GROUP BY x, y "
           "DISTANCE-TO-ALL L2 WITHIN 0.8 ON-OVERLAP JOIN-ANY "
           "PARTITION BY k")

    def _db(self, parallel):
        rng = random.Random(11)
        db = Database(seed=3, parallel=parallel)
        db.execute("CREATE TABLE t (k int, x float, y float)")
        db.insert("t", [(i % 4, rng.uniform(0, 10), rng.uniform(0, 10))
                        for i in range(240)])
        return db

    def test_rows_identical(self):
        assert self._db(0).execute(self.SQL).rows == \
            self._db(3).execute(self.SQL).rows

    def test_explain_analyze_counters_merge_to_serial_totals(self):
        serial = self._db(0).analyze(self.SQL)
        pooled = self._db(3).analyze(self.SQL)
        assert serial.rows == pooled.rows

        def counters(analyzed):
            return {k: v for k, v in analyzed.node_counters().items()
                    if not k.endswith("_s")}

        assert counters(serial) == counters(pooled)

    def test_single_partition_stays_serial(self):
        # without PARTITION BY there is one partition; the pool must not
        # engage (and results must still match)
        sql = ("SELECT count(*) FROM t GROUP BY x, y "
               "DISTANCE-TO-ANY L2 WITHIN 0.8")
        assert self._db(0).execute(sql).rows == self._db(4).execute(sql).rows

    def test_negative_parallel_means_cpu_count(self):
        from repro.core.parallel import resolve_workers
        import os

        assert resolve_workers(-1) == max(1, os.cpu_count() or 1)
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(6) == 6
        assert resolve_workers(None) == 1

    def test_partition_seed_stable_and_decorrelated(self):
        from repro.core.parallel import partition_seed

        assert partition_seed(7, ()) == 7
        assert partition_seed(7, ("a",)) == partition_seed(7, ("a",))
        assert partition_seed(7, ("a",)) != partition_seed(7, ("b",))
        assert partition_seed(7, ("a",)) != 7
