"""Partition-parallel SGB execution (perf layer, see docs/architecture.md).

A similarity GROUP BY with equality partition keys is embarrassingly
parallel across partitions: each partition is grouped by an independent
operator instance, and with ``tiebreak='random'`` every partition already
draws from its own deterministic RNG stream (:func:`partition_seed`, the
blake2b mix introduced for decorrelation).  Nothing about the grouping
depends on *where* a partition runs, so dispatching partitions to a
``ProcessPoolExecutor`` is bit-identical to the serial loop by
construction — the only extra work is folding each worker's observability
payload back into the parent: :class:`~repro.obs.metrics.MetricBag`
counters/timings/histograms so ``EXPLAIN ANALYZE`` totals stay truthful,
and (when tracing) the worker's span records, which arrive already
parented onto the dispatching span via the propagated trace context
(``(trace_id, parent_span_id)`` — see :meth:`repro.obs.trace.Tracer.for_context`),
so the fold is a plain append with exact parent ids.

The ``parallel=`` knob accepted by :class:`~repro.engine.database.Database`
and the :func:`~repro.core.api.sgb_all` / :func:`~repro.core.api.sgb_any`
entry points is normalized by :func:`resolve_workers`: ``0``/``1`` mean
serial (the default — process startup outweighs the win for small inputs),
``n > 1`` means a pool of ``n`` workers, and any negative value means "one
worker per CPU".
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

Point = Tuple[float, ...]

#: Propagated trace context: ``(trace_id, parent_span_id)``.
TraceContext = Tuple[str, str]

#: Propagated profiler context: ``(interval_s, folded-frame prefix)``.
#: The prefix is the dispatching side's live span path (rendered as
#: ``span:<name>`` frames), so worker samples land under the right part
#: of the parent flamegraph — the profiling analogue of TraceContext.
ProfileContext = Tuple[float, Tuple[str, ...]]

#: Task tuple consumed by the worker: ``(index, mode, backend, points,
#: operator kwargs, collect metrics?, trace context or None, profile
#: context or None)``.
PartitionTask = Tuple[int, str, str, Sequence[Point], dict, bool,
                      Optional[TraceContext], Optional[ProfileContext]]

#: Observability payload returned per task (empty when uninstrumented):
#: ``counters``/``timings`` fold into the parent MetricBag, ``histograms``
#: maps name -> LatencyHistogram.state(), ``spans`` is a list of exported
#: SpanRecord dicts ready for ``Tracer.ingest``, ``profile`` a
#: SamplingProfiler.state() for ``SamplingProfiler.ingest``.
ObsPayload = Dict[str, Any]


def partition_seed(base_seed: int, pkey: tuple) -> int:
    """Deterministic per-partition RNG seed.

    Every partition used to receive the base seed verbatim, so with
    ``tiebreak='random'`` all partitions replayed the *same* random stream
    and made correlated JOIN-ANY choices.  Mixing in a stable digest of the
    partition key decorrelates partitions while keeping full-query results
    reproducible run-to-run and — crucially for the parallel executor —
    independent of which process handles which partition (``hash()`` is
    salted per process and therefore unusable here).
    """
    if not pkey:
        return base_seed
    digest = hashlib.blake2b(
        repr(pkey).encode("utf-8"), digest_size=8
    ).digest()
    return base_seed ^ int.from_bytes(digest, "big")


def resolve_workers(parallel: Optional[int]) -> int:
    """Normalize a ``parallel=`` knob to a positive worker count."""
    if parallel is None:
        return 1
    n = int(parallel)
    if n < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, n)


def make_operator(mode: str, **op_kwargs):
    """Instantiate the batch operator for ``mode`` ('all' or 'any').

    Imports are local so worker processes spawned before the operator
    modules were touched stay cheap to start.
    """
    if mode == "all":
        from repro.core.sgb_all import SGBAllOperator

        return SGBAllOperator(**op_kwargs)
    if mode == "any":
        from repro.core.sgb_any import SGBAnyOperator

        return SGBAnyOperator(**op_kwargs)
    raise ValueError(f"unknown SGB mode {mode!r}")


def run_partition(task: PartitionTask):
    """Group one partition (module-level so it pickles for the pool).

    Returns ``(index, labels, payload)``; the payload dict is empty when
    the parent attached neither a metric bag nor a tracer, so workers
    skip the CountingMetric wrap and span bookkeeping exactly like the
    uninstrumented serial path.
    """
    (index, mode, backend, points, op_kwargs, want_metrics, trace_ctx,
     profile_ctx) = task
    from repro import kernels
    from repro.obs.metrics import MetricBag

    if backend != kernels.active_backend():
        # A spawned worker re-selects the backend from the environment;
        # pin it to the parent's choice so results and counters agree.
        kernels.set_backend(backend)
    bag = MetricBag() if want_metrics else None
    tracer = None
    if trace_ctx is not None:
        from repro.obs.trace import Tracer

        trace_id, parent_span_id = trace_ctx
        # The tag (span-id prefix) must be unique per *task*, not per
        # process — a pool worker handles many tasks and restarts its
        # local counter each time.
        tracer = Tracer.for_context(
            trace_id, parent_span_id, tag=f"{parent_span_id}.p{index}."
        )
    profiler = None
    if profile_ctx is not None:
        from repro.obs.profile import SamplingProfiler

        interval_s, prefix = profile_ctx
        # The worker profiler sees the *worker* tracer, so its samples
        # carry the local span path (partition/ingest/finalize) appended
        # to the dispatch-side prefix.
        profiler = SamplingProfiler(
            interval_s=interval_s, tracer=tracer, prefix=prefix
        ).start()
    operator = make_operator(mode, metrics=bag, tracer=tracer, **op_kwargs)
    try:
        if tracer is not None:
            with tracer.span("partition", partition=index,
                             points=len(points), mode=mode,
                             pid=os.getpid()):
                operator.add_many(points)
                result = operator.finalize()
        else:
            operator.add_many(points)
            result = operator.finalize()
    finally:
        if profiler is not None:
            profiler.stop()
    payload: ObsPayload = {}
    if bag is not None:
        payload["counters"] = bag.counters
        payload["timings"] = bag.timings
        if bag.histograms:
            payload["histograms"] = {
                name: hist.state() for name, hist in bag.histograms.items()
            }
    if tracer is not None:
        payload["spans"] = tracer.export_records()
    if profiler is not None and profiler.samples:
        payload["profile"] = profiler.state()
    return index, result.labels, payload


def run_partitions(
    tasks: Sequence[Tuple[str, Sequence[Point], dict]],
    workers: int,
    backend: str,
    want_metrics: bool = False,
    trace_context: Optional[TraceContext] = None,
    cancel=None,
    profile_context: Optional[ProfileContext] = None,
) -> List[Tuple[List[int], ObsPayload]]:
    """Group every ``(mode, points, operator kwargs)`` task, possibly in
    parallel, and return ``(labels, obs payload)`` per task in input order.

    ``workers <= 1`` (or a single task) runs in-process — same code path,
    no pool, so the serial executor and the parallel one cannot drift; in
    particular a propagated ``trace_context`` produces the identical span
    tree either way (worker spans parent onto ``trace_context[1]``).

    ``cancel`` is an optional :class:`~repro.core.cancel.CancelToken`.
    The token itself never crosses the process boundary — dispatch checks
    it between partitions (serial path) or between arriving results (pool
    path): a tripped token cancels every not-yet-started future, lets
    in-flight partitions run to completion (a worker cannot be
    interrupted mid-group), and raises the token's typed error.
    """
    payload: List[PartitionTask] = [
        (i, mode, backend, points, op_kwargs, want_metrics, trace_context,
         profile_context)
        for i, (mode, points, op_kwargs) in enumerate(tasks)
    ]
    results: List[Optional[Tuple[List[int], ObsPayload]]] = [None] * len(payload)
    if workers <= 1 or len(payload) <= 1:
        for task in payload:
            if cancel is not None:
                cancel.check()
            index, labels, obs = run_partition(task)
            results[index] = (labels, obs)
    else:
        from concurrent.futures import ProcessPoolExecutor

        if cancel is not None:
            cancel.check()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_partition, task) for task in payload]
            try:
                for future in futures:
                    if cancel is not None:
                        cancel.check()
                    index, labels, obs = future.result()
                    results[index] = (labels, obs)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
    return results  # type: ignore[return-value]


def fold_obs_payload(payload: ObsPayload, bag=None, tracer=None,
                     profiler=None) -> None:
    """Fold one worker observability payload into parent collectors.

    ``bag`` receives counters, timings, and (merged) histograms;
    ``tracer`` ingests the worker's span records; ``profiler`` (a
    :class:`~repro.obs.profile.SamplingProfiler`) ingests the worker's
    collapsed-stack samples.  Any of them may be None.
    """
    if bag is not None:
        for name, value in payload.get("counters", {}).items():
            bag.incr(name, value)
        for name, seconds in payload.get("timings", {}).items():
            bag.add_time(name, seconds)
        if payload.get("histograms"):
            from repro.obs.hist import LatencyHistogram

            for name, state in payload["histograms"].items():
                bag.histogram(name).merge(LatencyHistogram.from_state(state))
    if tracer is not None and payload.get("spans"):
        tracer.ingest(payload["spans"])
    if profiler is not None and payload.get("profile"):
        profiler.ingest(payload["profile"])
