"""Legacy setup shim (offline environments without the wheel package)."""

from setuptools import setup

setup()
