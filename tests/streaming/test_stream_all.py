"""Unit tests for the incremental SGB-All engine."""

import random

import pytest

from repro.core.api import sgb_all
from repro.errors import InvalidParameterError, StreamStateError
from repro.streaming import StreamingSGBAll


def random_points(n, seed=11, span=10.0):
    rng = random.Random(seed)
    return [(rng.uniform(0, span), rng.uniform(0, span)) for _ in range(n)]


CLAUSES = ["join-any", "eliminate", "form-new-group"]


class TestSnapshotEqualsBatchPrefix:
    """The engine's core invariant: a snapshot after any prefix equals the
    batch operator run over that prefix (same order, same seed)."""

    @pytest.mark.parametrize("clause", CLAUSES)
    def test_snapshot_matches_batch_at_checkpoints(self, clause):
        pts = random_points(120)
        eng = StreamingSGBAll(eps=0.9, on_overlap=clause, seed=5)
        for i, p in enumerate(pts):
            eng.insert(p)
            if i in (0, 13, 59, 119):
                prefix = pts[: i + 1]
                batch = sgb_all(prefix, 0.9, on_overlap=clause, seed=5)
                snap = eng.snapshot()
                assert snap.partition() == batch.partition(), (clause, i)
                assert snap.eliminated_indices() == batch.eliminated_indices()

    @pytest.mark.parametrize("clause", CLAUSES)
    def test_snapshot_does_not_disturb_the_stream(self, clause):
        """Snapshotting mid-stream (deepcopy path for FORM-NEW-GROUP) must
        leave the live state byte-identical to an unsnapshotted run."""
        pts = random_points(80, seed=23)
        plain = StreamingSGBAll(eps=0.9, on_overlap=clause, seed=1)
        probed = StreamingSGBAll(eps=0.9, on_overlap=clause, seed=1)
        for i, p in enumerate(pts):
            plain.insert(p)
            probed.insert(p)
            if i % 17 == 0:
                probed.snapshot()
        assert probed.result() == plain.result()

    @pytest.mark.parametrize("tiebreak", ["first", "random"])
    def test_join_any_tiebreaks(self, tiebreak):
        pts = random_points(100, seed=4)
        eng = StreamingSGBAll(eps=0.8, tiebreak=tiebreak, seed=9)
        eng.extend(pts)
        batch = sgb_all(pts, 0.8, tiebreak=tiebreak, seed=9)
        assert eng.snapshot().partition() == batch.partition()

    @pytest.mark.parametrize("metric", ["l2", "linf"])
    @pytest.mark.parametrize("strategy", ["all-pairs", "bounds-checking",
                                          "index"])
    def test_strategies_and_metrics(self, strategy, metric):
        pts = random_points(90, seed=8)
        eng = StreamingSGBAll(eps=0.8, metric=metric, strategy=strategy,
                              tiebreak="first")
        eng.extend(pts)
        batch = sgb_all(pts, 0.8, metric=metric, strategy=strategy,
                        tiebreak="first")
        assert eng.snapshot().partition() == batch.partition()

    def test_result_equals_batch_finalize(self):
        pts = random_points(100, seed=2)
        eng = StreamingSGBAll(eps=0.9, on_overlap="form-new-group")
        eng.extend(pts)
        batch = sgb_all(pts, 0.9, on_overlap="form-new-group")
        assert eng.result() == batch


class TestLifecycleAndStats:
    def test_result_closes_the_stream(self):
        eng = StreamingSGBAll(eps=1.0)
        eng.extend([(0, 0), (0.5, 0)])
        eng.result()
        with pytest.raises(StreamStateError):
            eng.insert((1, 1))
        with pytest.raises(StreamStateError):
            eng.result()

    def test_counters(self):
        eng = StreamingSGBAll(eps=1.0, tiebreak="first")
        eng.extend([(0, 0), (0.5, 0), (9, 9)])
        st = eng.stats
        assert st.points == 3
        assert st.index_probes == 3
        assert st.groups_created == 2
        assert eng.n_groups == 2

    def test_eliminate_counters(self):
        # (1, 0) qualifies for both singleton cliques -> eliminated.
        eng = StreamingSGBAll(eps=1.0, on_overlap="eliminate",
                              metric="linf")
        eng.extend([(0, 0), (2, 0), (1, 0)])
        assert eng.stats.eliminated == 1
        snap = eng.snapshot()
        assert snap.n_eliminated == 1
        assert snap.n_groups == 2
        batch = sgb_all([(0, 0), (2, 0), (1, 0)], 1.0,
                        on_overlap="eliminate", metric="linf")
        assert snap == batch

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(InvalidParameterError):
            StreamingSGBAll(eps=0)

    def test_empty_snapshot(self):
        eng = StreamingSGBAll(eps=1.0)
        snap = eng.snapshot()
        assert snap.n_points == 0 and snap.n_groups == 0
