"""One-dimensional similarity grouping on sensor readings.

Demonstrates the ICDE 2009 operator family that the multi-dimensional SGB
paper builds on, through both the array API and the SQL dialect:

* `MAXIMUM-ELEMENT-SEPARATION` segments noisy temperature readings into
  operating regimes (values cluster around plateaus);
* `GROUP AROUND` audits the readings against known setpoints;
* the multi-dimensional `AROUND ((lat, lon), …)` variant assigns readings
  to the nearest of several stations.

    python examples/sensor_segmentation.py [n_readings]
"""

import random
import sys

from repro import Database, sgb_segment


def build_readings(n: int, seed: int = 13):
    """Temperature readings that dwell on plateaus with jitter/outliers."""
    rng = random.Random(seed)
    plateaus = [18.0, 21.5, 45.0, 70.0]
    rows = []
    for i in range(n):
        level = plateaus[(i * len(plateaus)) // n]
        value = rng.gauss(level, 0.4)
        if rng.random() < 0.03:  # sensor glitch
            value += rng.choice([-1, 1]) * rng.uniform(8, 12)
        station = rng.choice(["north", "south"])
        rows.append((i, station, round(value, 2)))
    return rows


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    rows = build_readings(n)

    db = Database()
    db.execute(
        "CREATE TABLE readings (seq int, station text, temp float)"
    )
    db.insert("readings", rows)

    print(f"{n} readings from 2 stations\n")

    print("regimes found by MAXIMUM-ELEMENT-SEPARATION 2.0:")
    result = db.execute(
        "SELECT count(*), min(temp), max(temp), avg(temp) FROM readings "
        "GROUP BY temp MAXIMUM-ELEMENT-SEPARATION 2.0"
    )
    for count, lo, hi, mean in sorted(result.rows, key=lambda r: r[1]):
        print(f"  {count:4d} readings in [{lo:7.2f}, {hi:7.2f}] "
              f"(mean {mean:6.2f})")

    print("\naudit against the four known setpoints "
          "(GROUP AROUND, diameter 6):")
    result = db.execute(
        "SELECT count(*), min(temp), max(temp) FROM readings "
        "GROUP BY temp AROUND (18, 21.5, 45, 70) "
        "MAXIMUM-GROUP-DIAMETER 6"
    )
    audited = sum(r[0] for r in result)
    for count, lo, hi in sorted(result.rows, key=lambda r: r[1]):
        print(f"  {count:4d} readings near setpoint, range "
              f"[{lo:7.2f}, {hi:7.2f}]")
    print(f"  {n - audited} glitched readings fall outside every setpoint")

    # the same segmentation through the array API
    values = [temp for _, _, temp in rows]
    res = sgb_segment(values, max_separation=2.0)
    print(f"\narray API agrees: {res.n_groups} regimes, sizes "
          f"{res.group_sizes()}")


if __name__ == "__main__":
    main()
