"""Space-filling-curve presorting for the index layer.

Insertion order is the hidden parameter of every spatial structure in
this repo: a Guttman R-tree grown from random-order inserts overlaps
badly, a hash grid filled in input order scatters neighbouring cells
across the bucket table, and batch probe loops that jump around the
plane defeat the kernels' contiguous-buffer locality.  Sorting points
along a space-filling curve before building fixes all three at once —
consecutive positions on the curve are spatially adjacent, so packed
leaves are tight, buckets for nearby cells are allocated together, and
chunked probes revisit the same index region.

Two curves are provided:

* **Hilbert** (2-D) — the classic order-``k`` Hilbert curve over a
  ``2^k × 2^k`` cell lattice, computed with the iterative rotate/flip
  walk (Warren, *Hacker's Delight* §16; equivalently the d2xy/xy2d pair
  of the Wikipedia formulation).  Hilbert keeps every curve step between
  edge-adjacent cells, which is what makes it the strongest locality
  order for 2-D data.
* **Morton / Z-order** (any dimensionality) — plain bit interleaving.
  Weaker locality (diagonal jumps at power-of-two boundaries) but
  defined in every dimension, so it is the fallback whenever the input
  is not 2-D.

The public entry point is :func:`sort_indices`: it normalizes raw float
coordinates onto the cell lattice and returns a *permutation* of the
point indices, never touching the points themselves — callers that must
preserve external ids (every SGB strategy: labels are keyed by input
position) apply the permutation locally and translate back.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import InvalidParameterError

Point = Tuple[float, ...]

#: Default curve order: a 2^16 x 2^16 lattice resolves ~4e9 distinct
#: cells, far below the collision point of any workload this repo runs
#: while keeping keys comfortably inside 64 bits in 2-D (32 bits used).
DEFAULT_ORDER = 16


def hilbert_key_2d(x: int, y: int, order: int = DEFAULT_ORDER) -> int:
    """Distance along the order-``order`` Hilbert curve of cell ``(x, y)``.

    ``x`` and ``y`` must lie in ``[0, 2**order)``.  The walk runs from
    the most significant bit down, rotating the frame at each quadrant
    exactly as the curve recursion does.
    """
    if order <= 0:
        raise InvalidParameterError(f"order must be positive, got {order}")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise InvalidParameterError(
            f"cell ({x}, {y}) outside the 2^{order} lattice"
        )
    rx = 0
    ry = 0
    d = 0
    s = side >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant so the sub-curve is upright again.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def morton_key(cell: Sequence[int], order: int = DEFAULT_ORDER) -> int:
    """Z-order key of a d-dimensional lattice cell (bit interleaving)."""
    if order <= 0:
        raise InvalidParameterError(f"order must be positive, got {order}")
    side = 1 << order
    key = 0
    dim = len(cell)
    for bit in range(order - 1, -1, -1):
        for c in cell:
            if not (0 <= c < side):
                raise InvalidParameterError(
                    f"cell {tuple(cell)} outside the 2^{order} lattice"
                )
            key = (key << 1) | ((c >> bit) & 1)
    if dim == 0:
        raise InvalidParameterError("cells must have >= 1 dimension")
    return key


def _lattice_cells(points: Sequence[Point], order: int) -> List[Tuple[int, ...]]:
    """Scale raw coordinates onto the ``2^order`` integer lattice.

    Each dimension is normalized independently over its observed range;
    degenerate dimensions (all points share one value) collapse to cell 0.
    """
    if not points:
        return []
    dim = len(points[0])
    lo = [min(p[d] for p in points) for d in range(dim)]
    hi = [max(p[d] for p in points) for d in range(dim)]
    side = (1 << order) - 1
    scales = [
        (side / (h - l)) if h > l else 0.0 for l, h in zip(lo, hi)
    ]
    return [
        tuple(int((v - l) * s) for v, l, s in zip(p, lo, scales))
        for p in points
    ]


def curve_keys(points: Sequence[Point],
               order: int = DEFAULT_ORDER) -> List[int]:
    """Space-filling-curve key per point: Hilbert in 2-D, Morton else."""
    cells = _lattice_cells(points, order)
    if not cells:
        return []
    if len(cells[0]) == 2:
        return [hilbert_key_2d(cx, cy, order) for cx, cy in cells]
    return [morton_key(c, order) for c in cells]


def sort_indices(points: Sequence[Point],
                 order: int = DEFAULT_ORDER) -> List[int]:
    """Permutation of ``range(len(points))`` in curve order.

    Ties (points sharing a lattice cell) break by original index, so the
    permutation is deterministic and stable — a requirement for every
    consumer that re-derives input-position labels afterwards.
    """
    keys = curve_keys(points, order)
    return sorted(range(len(points)), key=lambda i: (keys[i], i))
