"""SGB-All unit tests: semantics of the three ON-OVERLAP clauses."""

import pytest

from repro.core.api import sgb_all
from repro.core.result import ELIMINATED
from repro.core.sgb_all import SGBAllOperator, normalize_overlap
from repro.errors import InvalidParameterError

STRATEGIES = ["all-pairs", "bounds-checking", "index"]


class TestNormalizeOverlap:
    @pytest.mark.parametrize("raw,canon", [
        ("JOIN-ANY", "join-any"), ("join_any", "join-any"),
        ("Eliminate", "eliminate"),
        ("FORM-NEW-GROUP", "form-new-group"),
        ("form-new", "form-new-group"), ("form_new_group", "form-new-group"),
    ])
    def test_spellings(self, raw, canon):
        assert normalize_overlap(raw) == canon

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            normalize_overlap("drop")


class TestParameterValidation:
    def test_negative_eps(self):
        with pytest.raises(InvalidParameterError):
            SGBAllOperator(eps=-1)

    def test_unknown_strategy(self):
        with pytest.raises(InvalidParameterError):
            SGBAllOperator(eps=1, strategy="btree")

    def test_unknown_tiebreak(self):
        with pytest.raises(InvalidParameterError):
            SGBAllOperator(eps=1, tiebreak="last")

    def test_dimension_consistency(self):
        op = SGBAllOperator(eps=1)
        op.add((1, 2))
        with pytest.raises(InvalidParameterError):
            op.add((1, 2, 3))

    def test_finalize_twice(self):
        op = SGBAllOperator(eps=1)
        op.add((0, 0))
        op.finalize()
        with pytest.raises(RuntimeError):
            op.finalize()
        with pytest.raises(RuntimeError):
            op.add((1, 1))


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestBasicGrouping:
    def test_empty_input(self, strategy):
        res = sgb_all([], eps=1, strategy=strategy)
        assert res.n_points == 0 and res.n_groups == 0

    def test_single_point(self, strategy):
        res = sgb_all([(1, 1)], eps=1, strategy=strategy)
        assert res.labels == [0]

    def test_two_far_points(self, strategy):
        res = sgb_all([(0, 0), (10, 10)], eps=1, strategy=strategy)
        assert res.n_groups == 2

    def test_clique_forms_one_group(self, strategy):
        pts = [(0, 0), (1, 0), (0, 1), (1, 1)]
        res = sgb_all(pts, eps=2, metric="l2", strategy=strategy)
        assert res.n_groups == 1
        assert res.group_sizes() == [4]

    def test_eps_zero_is_equality_grouping(self, strategy):
        pts = [(1, 1), (2, 2), (1, 1), (3, 3), (2, 2), (1, 1)]
        res = sgb_all(pts, eps=0, strategy=strategy, tiebreak="first")
        assert sorted(res.group_sizes()) == [1, 2, 3]
        groups = res.groups()
        for members in groups.values():
            values = {pts[i] for i in members}
            assert len(values) == 1

    def test_identical_points_single_group(self, strategy):
        res = sgb_all([(5, 5)] * 7, eps=0.5, strategy=strategy)
        assert res.n_groups == 1
        assert res.group_sizes() == [7]

    def test_one_dimensional_points(self, strategy):
        res = sgb_all([(1,), (1.5,), (9,)], eps=1, strategy=strategy)
        assert res.n_groups == 2


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestJoinAny:
    def test_overlap_point_joins_exactly_one(self, strategy):
        # x is a candidate for both pairs; JOIN-ANY places it in one
        pts = [(0, 0), (1, 0), (4, 0), (5, 0), (2.5, 0)]
        res = sgb_all(pts, eps=2.6, metric="l2", on_overlap="join-any",
                      strategy=strategy, tiebreak="first")
        assert sorted(res.group_sizes()) == [2, 3]
        assert res.n_eliminated == 0

    def test_random_tiebreak_is_seeded(self, strategy):
        pts = [(0, 0), (1, 0), (4, 0), (5, 0), (2.5, 0)]
        a = sgb_all(pts, eps=2.6, on_overlap="join-any", strategy=strategy,
                    tiebreak="random", seed=123)
        b = sgb_all(pts, eps=2.6, on_overlap="join-any", strategy=strategy,
                    tiebreak="random", seed=123)
        assert a == b


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestEliminate:
    def test_multi_candidate_point_dropped(self, strategy):
        pts = [(1, 6), (2, 7), (6, 4), (7, 5), (4, 5.5)]  # Example 1
        res = sgb_all(pts, eps=3, metric="linf", on_overlap="eliminate",
                      strategy=strategy)
        assert res.labels[4] == ELIMINATED
        assert sorted(res.group_sizes()) == [2, 2]

    def test_partial_overlap_members_removed(self, strategy):
        # g1 = {(0,0), (3,0)}; new point (4,0) is within eps=3.5 of (3,0)
        # only -> g1 is an overlap group, (3,0) is deleted (Figure 4's a3).
        pts = [(0, 0), (3, 0), (4.5, 0)]
        res = sgb_all(pts, eps=3.5, metric="linf", on_overlap="eliminate",
                      strategy=strategy)
        assert res.labels[1] == ELIMINATED
        assert res.labels[0] != ELIMINATED
        assert res.labels[2] != ELIMINATED

    def test_no_overlap_nothing_eliminated(self, strategy):
        pts = [(0, 0), (1, 1), (50, 50), (51, 51)]
        res = sgb_all(pts, eps=3, metric="linf", on_overlap="eliminate",
                      strategy=strategy)
        assert res.n_eliminated == 0
        assert sorted(res.group_sizes()) == [2, 2]


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFormNewGroup:
    def test_overlap_point_gets_new_group(self, strategy):
        pts = [(1, 6), (2, 7), (6, 4), (7, 5), (4, 5.5)]  # Example 1
        res = sgb_all(pts, eps=3, metric="linf", on_overlap="form-new-group",
                      strategy=strategy)
        assert sorted(res.group_sizes()) == [1, 2, 2]
        assert res.labels[4] not in (res.labels[0], res.labels[2])
        assert res.n_eliminated == 0

    def test_every_point_is_placed(self, strategy):
        pts = [(i * 0.8, 0) for i in range(12)]
        res = sgb_all(pts, eps=2, metric="linf",
                      on_overlap="form-new-group", strategy=strategy)
        assert res.n_eliminated == 0
        assert all(lb >= 0 for lb in res.labels)

    def test_recursive_regrouping_forms_cliques(self, strategy):
        # chain: overlaps cascade into the deferred set, which must itself
        # be grouped into valid cliques
        pts = [(0, 0), (2, 0), (4, 0), (6, 0), (3, 0), (5, 0)]
        res = sgb_all(pts, eps=2.5, metric="linf",
                      on_overlap="form-new-group", strategy=strategy)
        for members in res.groups().values():
            coords = [pts[i] for i in members]
            for i, a in enumerate(coords):
                for b in coords[i + 1:]:
                    assert max(abs(a[0] - b[0]), abs(a[1] - b[1])) <= 2.5


class TestMaxRecursion:
    def test_recursion_cap_forces_singletons(self):
        pts = [(i * 0.8, 0) for i in range(10)]
        res = sgb_all(pts, eps=2, metric="linf",
                      on_overlap="form-new-group", max_recursion=0)
        # still a total grouping, nothing lost
        assert res.n_eliminated == 0
        assert sum(res.group_sizes()) == len(pts)


class TestUseHullToggle:
    def test_hull_off_same_result(self):
        import random

        rng = random.Random(9)
        pts = [(rng.uniform(0, 5), rng.uniform(0, 5)) for _ in range(150)]
        for clause in ("join-any", "eliminate", "form-new-group"):
            on = sgb_all(pts, 1.0, "l2", clause, "index", tiebreak="first",
                         use_hull=True)
            off = sgb_all(pts, 1.0, "l2", clause, "index", tiebreak="first",
                          use_hull=False)
            assert on == off
