"""Input validation at the array-API boundary (satellite hardening pass).

A NaN coordinate compares false with everything, so one reaching a grid
cell or R-tree rectangle silently corrupts the index; mixed-dimension
points crash deep inside distance kernels with an opaque zip truncation
instead of a typed error.  Both must be rejected at the door.
"""

import math

import pytest

from repro.core.api import (
    check_eps,
    sgb_all,
    sgb_any,
    sgb_stream,
    validate_point,
)
from repro.errors import (
    DimensionMismatchError,
    InvalidCoordinateError,
    InvalidParameterError,
)

NON_FINITE = [float("nan"), float("inf"), float("-inf")]


class TestEpsValidation:
    @pytest.mark.parametrize("bad", NON_FINITE + [-1.0, -0.5])
    def test_batch_apis_reject_bad_eps(self, bad):
        with pytest.raises(InvalidParameterError):
            sgb_any([(0, 0)], bad)
        with pytest.raises(InvalidParameterError):
            sgb_all([(0, 0)], bad)

    def test_batch_apis_accept_zero_eps(self):
        # eps=0 is the equality-grouping degeneracy of plain GROUP BY
        assert sgb_any([(0, 0), (0, 0), (1, 1)], 0).n_groups == 2

    def test_streaming_requires_strictly_positive_eps(self):
        with pytest.raises(InvalidParameterError):
            sgb_stream("any", eps=0)
        with pytest.raises(InvalidParameterError):
            sgb_stream("all", eps=0)

    def test_check_eps_rejects_non_numbers(self):
        with pytest.raises(InvalidParameterError):
            check_eps("wide")
        with pytest.raises(InvalidParameterError):
            check_eps(None)

    def test_check_eps_coerces_to_float(self):
        out = check_eps(2)
        assert out == 2.0 and isinstance(out, float)


class TestCoordinateValidation:
    @pytest.mark.parametrize("bad", NON_FINITE)
    def test_batch_apis_reject_non_finite_coordinates(self, bad):
        pts = [(0.0, 0.0), (1.0, bad), (2.0, 2.0)]
        with pytest.raises(InvalidCoordinateError):
            sgb_any(pts, 1.0)
        with pytest.raises(InvalidCoordinateError):
            sgb_all(pts, 1.0)

    def test_streaming_rejects_non_finite_coordinates(self):
        stream = sgb_stream("any", eps=1.0, batch_size=1)
        with pytest.raises(InvalidCoordinateError):
            stream.insert((float("nan"), 0.0))

    def test_error_type_is_an_invalid_parameter(self):
        # callers catching the broad class keep working
        assert issubclass(InvalidCoordinateError, InvalidParameterError)

    def test_non_numeric_coordinates(self):
        with pytest.raises(InvalidParameterError):
            sgb_any([(0.0, "east")], 1.0)

    def test_validate_point_establishes_dimension(self):
        pt, dim = validate_point((1, 2.5), None)
        assert pt == (1.0, 2.5) and dim == 2
        assert all(isinstance(v, float) for v in pt)

    def test_empty_point_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_point((), None)


class TestDimensionValidation:
    def test_batch_apis_reject_mixed_dimensions(self):
        pts = [(0.0, 0.0), (1.0, 1.0, 1.0)]
        with pytest.raises(DimensionMismatchError):
            sgb_any(pts, 1.0)
        with pytest.raises(DimensionMismatchError):
            sgb_all(pts, 1.0)

    def test_error_type_is_an_invalid_parameter(self):
        assert issubclass(DimensionMismatchError, InvalidParameterError)

    def test_uniform_higher_dimension_accepted(self):
        res = sgb_any([(0, 0, 0), (0.5, 0, 0), (9, 9, 9)], 1.0)
        assert res.n_groups == 2

    def test_validation_is_lazy_up_to_the_bad_point(self):
        # the good prefix is validated before the bad point raises,
        # not the whole input eagerly
        def gen():
            yield (0.0, 0.0)
            yield (1.0, float("nan"))
            raise AssertionError("must not be pulled past the bad point")

        with pytest.raises(InvalidCoordinateError):
            sgb_any(gen(), 1.0)


def test_valid_inputs_still_group():
    res = sgb_all([(0, 0), (0.5, 0.5), (9, 9)], 1.0, tiebreak="first")
    assert res.n_groups == 2
    assert math.isclose(sum(res.group_sizes()), 3)
