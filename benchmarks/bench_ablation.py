"""Ablation benchmarks for the design choices DESIGN.md calls out.

A. SGB-Any index structure: R-tree vs uniform grid vs All-Pairs.
B. L2 convex-hull refinement: on vs off.
C. R-tree fanout sensitivity.
D. JOIN-ANY tie-breaking: deterministic vs random.
"""

import pytest

from repro.core.api import sgb_all, sgb_any

from conftest import run_benchmark

EPS = 0.3


@pytest.mark.parametrize("strategy", ["all-pairs", "index", "grid"])
def test_ablation_any_index_structure(benchmark, points_2k, strategy):
    run_benchmark(benchmark,
                  lambda: sgb_any(points_2k, EPS, "l2", strategy))


@pytest.mark.parametrize("use_hull", [True, False],
                         ids=["hull-on", "hull-off"])
def test_ablation_hull_refinement(benchmark, points_2k, use_hull):
    run_benchmark(
        benchmark,
        lambda: sgb_all(points_2k, EPS, "l2", "join-any", "index",
                        tiebreak="first", use_hull=use_hull),
    )


@pytest.mark.parametrize("fanout", [4, 8, 16, 32])
def test_ablation_rtree_fanout(benchmark, points_2k, fanout):
    run_benchmark(
        benchmark,
        lambda: sgb_any(points_2k, EPS, "l2", "index",
                        rtree_max_entries=fanout),
    )


@pytest.mark.parametrize("tiebreak", ["first", "random"])
def test_ablation_join_any_tiebreak(benchmark, points_2k, tiebreak):
    run_benchmark(
        benchmark,
        lambda: sgb_all(points_2k, EPS, "l2", "join-any", "index",
                        tiebreak=tiebreak),
    )


@pytest.mark.parametrize("mode", ["incremental", "bulk"])
def test_ablation_rtree_build(benchmark, points_2k, mode):
    """STR bulk loading vs one-at-a-time insertion (build + one query)."""
    from repro.geometry.rectangle import Rect
    from repro.index.rtree import RTree

    entries = [(Rect.from_point(p), i) for i, p in enumerate(points_2k)]
    window = Rect((5, 5), (8, 8))

    def build_incremental():
        t = RTree(max_entries=8)
        for rect, i in entries:
            t.insert(rect, i)
        return t.search(window)

    def build_bulk():
        t = RTree.bulk_load(entries, max_entries=8)
        return t.search(window)

    fn = build_incremental if mode == "incremental" else build_bulk
    run_benchmark(benchmark, fn)
