"""File discovery and rule execution for sgblint."""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, syntax_error_finding
from repro.analysis.project import Project
from repro.analysis.registry import (
    Rule,
    run_project_rules,
    run_rules,
    split_rules,
)

#: Directory basenames never descended into.
EXCLUDED_DIR_NAMES = frozenset({
    "__pycache__", ".git", ".venv", ".mypy_cache", ".ruff_cache",
    ".pytest_cache", "build", "dist", "node_modules", ".eggs",
})

#: Path fragments skipped during *directory traversal* only — files named
#: explicitly on the command line are always linted (the rule-fixture
#: corpus under tests/analysis/fixtures is full of deliberate
#: violations, but `python -m repro.analysis <fixture>` must still flag
#: them for the fixture tests to mean anything).
EXCLUDED_PATH_FRAGMENTS = ("tests/analysis/fixtures",)


def _norm(path: str) -> str:
    """Normalized, forward-slash, cwd-relative-when-possible path — the
    spelling used in findings and baseline entries."""
    rel = os.path.relpath(path)
    if rel.startswith(".." + os.sep) or rel == "..":
        rel = path
    return rel.replace(os.sep, "/")


def iter_python_files(paths: Sequence[str],
                      include_fixtures: bool = False) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for raw in paths:
        if os.path.isfile(raw):
            norm = _norm(raw)
            if norm not in seen:
                seen.add(norm)
                yield norm
            continue
        for dirpath, dirnames, filenames in os.walk(raw):
            dirnames[:] = sorted(
                d for d in dirnames if d not in EXCLUDED_DIR_NAMES
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                norm = _norm(os.path.join(dirpath, filename))
                if not include_fixtures and any(
                    frag in norm for frag in EXCLUDED_PATH_FRAGMENTS
                ):
                    continue
                if norm not in seen:
                    seen.add(norm)
                    yield norm


def lint_source(source: str, path: str = "<string>",
                module: Optional[str] = None,
                rules: Iterable[Rule] = ()) -> List[Finding]:
    """Lint a source string (the unit-test entry point).

    ``module`` overrides the dotted module identity used for rule
    scoping; fixtures alternatively embed ``# sgblint: module=...``.
    Whole-program rules see a single-file project, which is exactly what
    the TP/TN fixtures want.
    """
    try:
        ctx = FileContext(path, source, module=module)
    except SyntaxError as exc:
        return [syntax_error_finding(path, exc)]
    if ctx.skip_file:
        return []
    file_rules, project_rules = split_rules(rules)
    findings = run_rules(ctx, file_rules) if file_rules else []
    if project_rules:
        findings.extend(run_project_rules(Project([ctx]), project_rules))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(path: str, module: Optional[str] = None,
              rules: Iterable[Rule] = ()) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, _norm(path), module=module, rules=rules)


def load_contexts(paths: Sequence[str],
                  include_fixtures: bool = False,
                  ) -> "tuple[List[FileContext], List[Finding]]":
    """Parse every file under ``paths`` into contexts; syntax errors
    become SGB000 findings instead of contexts."""
    contexts: List[FileContext] = []
    errors: List[Finding] = []
    for path in iter_python_files(paths, include_fixtures=include_fixtures):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            ctx = FileContext(path, source)
        except SyntaxError as exc:
            errors.append(syntax_error_finding(path, exc))
            continue
        if not ctx.skip_file:
            contexts.append(ctx)
    return contexts, errors


def lint_paths(paths: Sequence[str],
               rules: Iterable[Rule] = (),
               include_fixtures: bool = False,
               cache=None) -> List[Finding]:
    """Lint every Python file under ``paths``; findings sorted by
    location.

    Per-file rules run file by file (served from ``cache`` when one is
    given and the file plus its import cone are unchanged); whole-program
    rules run once over a project built from every parsed context.
    """
    contexts, findings = load_contexts(
        paths, include_fixtures=include_fixtures)
    file_rules, project_rules = split_rules(rules)
    project = Project(contexts)
    if cache is not None:
        findings.extend(
            cache.run(contexts, project, file_rules, project_rules))
    else:
        if file_rules:
            for ctx in contexts:
                findings.extend(run_rules(ctx, file_rules))
        if project_rules:
            findings.extend(run_project_rules(project, project_rules))
    findings.sort(key=Finding.sort_key)
    return findings
