"""R-tree bulk loading (STR) and k-NN search tests."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rectangle import Rect
from repro.index.rtree import RTree

coord = st.floats(0, 100, allow_nan=False)


def point_entries(points):
    return [(Rect.from_point(p), i) for i, p in enumerate(points)]


class TestBulkLoad:
    def test_empty(self):
        t = RTree.bulk_load([])
        assert len(t) == 0
        assert t.search(Rect((0, 0), (100, 100))) == []

    def test_single(self):
        t = RTree.bulk_load(point_entries([(5, 5)]))
        assert t.search(Rect((0, 0), (10, 10))) == [0]

    def test_queries_match_incremental(self):
        rng = random.Random(1)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100))
                  for _ in range(500)]
        bulk = RTree.bulk_load(point_entries(points), max_entries=8)
        incremental = RTree(max_entries=8)
        for rect, i in point_entries(points):
            incremental.insert(rect, i)
        for _ in range(20):
            x, y = rng.uniform(0, 80), rng.uniform(0, 80)
            window = Rect((x, y), (x + 15, y + 15))
            assert sorted(bulk.search(window)) == sorted(
                incremental.search(window)
            )

    def test_invariants_and_packing(self):
        points = [(i % 40, i // 40) for i in range(800)]
        t = RTree.bulk_load(point_entries(points), max_entries=8)
        t.check_invariants()
        assert len(t) == 800
        # packed trees are shallower than (or equal to) incremental ones
        inc = RTree(max_entries=8)
        for rect, i in point_entries(points):
            inc.insert(rect, i)
        assert t.height() <= inc.height()

    def test_inserts_after_bulk_load(self):
        t = RTree.bulk_load(point_entries([(1, 1), (2, 2), (3, 3)]))
        t.insert(Rect.from_point((50, 50)), 99)
        assert 99 in t.search(Rect((49, 49), (51, 51)))
        t.check_invariants()

    def test_deletes_after_bulk_load(self):
        points = [(float(i), 0.0) for i in range(50)]
        t = RTree.bulk_load(point_entries(points), max_entries=4)
        assert t.delete(Rect.from_point((10.0, 0.0)), 10)
        assert 10 not in t.search(Rect((0, 0), (100, 1)))
        assert len(t) == 49
        t.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(points=st.lists(st.tuples(coord, coord), max_size=120),
           window=st.tuples(coord, coord))
    def test_bulk_load_property(self, points, window):
        t = RTree.bulk_load(point_entries(points), max_entries=6)
        w = Rect(window, (window[0] + 20, window[1] + 20))
        got = sorted(t.search(w))
        want = sorted(i for i, p in enumerate(points)
                      if w.contains_point(p))
        assert got == want

    def test_hilbert_presort_same_answers(self):
        rng = random.Random(8)
        points = [(rng.uniform(0, 100), rng.uniform(0, 100))
                  for _ in range(400)]
        str_tree = RTree.bulk_load(point_entries(points), max_entries=8,
                                   presort="str")
        hil_tree = RTree.bulk_load(point_entries(points), max_entries=8,
                                   presort="hilbert")
        hil_tree.check_invariants()
        for _ in range(25):
            x, y = rng.uniform(0, 85), rng.uniform(0, 85)
            w = Rect((x, y), (x + 12, y + 12))
            assert sorted(hil_tree.search(w)) == sorted(str_tree.search(w))

    def test_hilbert_presort_packs_shallow(self):
        points = [(i % 40, i // 40) for i in range(800)]
        t = RTree.bulk_load(point_entries(points), max_entries=8,
                            presort="hilbert")
        inc = RTree(max_entries=8)
        for rect, i in point_entries(points):
            inc.insert(rect, i)
        assert t.height() <= inc.height()

    def test_unknown_presort_rejected(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            RTree.bulk_load(point_entries([(1, 1)]), presort="zorder")


class TestNearest:
    def test_empty_tree(self):
        assert RTree().nearest((0, 0), k=3) == []

    def test_k_zero(self):
        t = RTree.bulk_load(point_entries([(1, 1)]))
        assert t.nearest((0, 0), k=0) == []

    def test_single_nearest(self):
        t = RTree.bulk_load(point_entries([(0, 0), (5, 5), (10, 10)]))
        [(d, item)] = t.nearest((6, 6), k=1)
        assert item == 1
        assert d == pytest.approx(math.sqrt(2))

    def test_k_larger_than_size(self):
        t = RTree.bulk_load(point_entries([(0, 0), (1, 0)]))
        results = t.nearest((0, 0), k=10)
        assert [item for _, item in results] == [0, 1]

    def test_distances_ascending(self):
        rng = random.Random(2)
        points = [(rng.uniform(0, 50), rng.uniform(0, 50))
                  for _ in range(200)]
        t = RTree.bulk_load(point_entries(points))
        results = t.nearest((25, 25), k=10)
        dists = [d for d, _ in results]
        assert dists == sorted(dists)

    @settings(max_examples=30, deadline=None)
    @given(points=st.lists(st.tuples(coord, coord), min_size=1,
                           max_size=80),
           probe=st.tuples(coord, coord), k=st.integers(1, 10))
    def test_matches_brute_force(self, points, probe, k):
        t = RTree.bulk_load(point_entries(points), max_entries=5)
        got = t.nearest(probe, k=k)
        want = sorted(
            (math.dist(probe, p), i) for i, p in enumerate(points)
        )[:k]
        assert len(got) == min(k, len(points))
        for (gd, _), (wd, _) in zip(got, want):
            assert gd == pytest.approx(wd)
