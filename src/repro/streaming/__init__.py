"""Incremental (streaming) Similarity Group-By.

The batch operators answer one-shot queries; this package maintains SGB
groups *online* as rows arrive, in micro-batches:

* :class:`StreamingSGBAny` — connected ε-components under point insertion
  (incremental Union-Find + grid/R-tree neighbor index).  Order-independent:
  every snapshot equals the batch operator on the ingested point set.
* :class:`StreamingSGBAll` — ε-All clique groups maintained incrementally
  (per-group ε-All rectangles, MBR index, hull refinement).  Snapshot
  equals the batch operator on the same prefix in the same order/seed.
* :class:`MicroBatcher` — configurable-batch ingestion with per-batch
  :class:`StreamStats` accounting.
* :class:`StreamingGroupView` — attaches an engine to a database table so
  INSERT-then-requery reads maintained state instead of recomputing.

The convenience entry point is :func:`repro.sgb_stream`.
"""

from repro.streaming.all_engine import StreamingSGBAll
from repro.streaming.any_engine import StreamingSGBAny
from repro.streaming.micro_batch import MicroBatcher
from repro.streaming.neighbors import (
    GridNeighborIndex,
    LinearNeighborIndex,
    NeighborIndex,
    RTreeNeighborIndex,
    make_neighbor_index,
)
from repro.streaming.stats import BatchRecord, StreamStats, total_of
from repro.streaming.view import StreamingGroupView

__all__ = [
    "StreamingSGBAny",
    "StreamingSGBAll",
    "MicroBatcher",
    "StreamingGroupView",
    "StreamStats",
    "BatchRecord",
    "total_of",
    "NeighborIndex",
    "GridNeighborIndex",
    "RTreeNeighborIndex",
    "LinearNeighborIndex",
    "make_neighbor_index",
]
