"""SGB002 — hot-path distance math must flow through repro.kernels."""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.astutil import dotted_name, from_imports, import_aliases
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Packages allowed to do coordinate math directly: the kernel backends
#: themselves and the computational-geometry layer they are built on.
ALLOWED = ("repro.kernels", "repro.geometry")

#: ``math`` functions that are distance computations in disguise.
DISTANCE_MATH_FNS = frozenset({"sqrt", "hypot", "dist"})


@register
class BackendDisciplineRule(Rule):
    """Distance math outside ``repro.kernels`` / ``repro.geometry`` must
    call the kernel primitives, not reimplement them.

    Backend bit-parity (numpy vs python producing identical memberships
    *and* identical CountingMetric charges) only holds because every hot
    path evaluates the similarity predicate through the
    :mod:`repro.kernels` seam.  An inline ``math.sqrt(sum((a - b) ** 2
    ...))`` silently forks the arithmetic: it never vectorizes, it
    charges no ``distance_computations`` counter, and its float summation
    order can disagree with the kernel's at the ulp level — exactly the
    drift the agreement suites exist to prevent.

    Outside the allowed packages this rule flags, in any ``repro.*``
    module:

    * calls to ``math.sqrt`` / ``math.hypot`` / ``math.dist`` (however
      imported);
    * per-coordinate accumulation loops — a ``sum(...)`` over a
      comprehension whose element multiplies or raises a coordinate
      difference (``(a - b) * (a - b)``, ``(a - b) ** 2``, ``abs(a - b)
      ** p``).

    Use :func:`repro.kernels.pairwise_within` /
    :func:`~repro.kernels.neighbors_in_eps` for predicate blocks, or a
    :class:`~repro.core.distance.Metric` instance for scalar distances.
    Deliberate scalar baselines (the reference ``Metric`` definitions,
    SQL scalar functions) carry ``# sgblint: disable=SGB002`` pragmas or
    baseline entries with justifications.
    """

    id = "SGB002"
    title = "inline distance math outside the kernel/geometry layers"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro") or ctx.in_package(*ALLOWED):
            return
        math_aliases = import_aliases(ctx.tree, "math")
        math_fn_locals = {
            local for local, orig in from_imports(ctx.tree, "math").items()
            if orig in DISTANCE_MATH_FNS
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in math_fn_locals:
                    yield self.finding(
                        ctx, node,
                        f"'{func.id}()' outside repro.kernels/"
                        f"repro.geometry; route distance math through "
                        f"kernel primitives or a Metric",
                    )
                elif func.id == "sum" and node.args:
                    yield from self._check_accumulation(ctx, node)
            elif isinstance(func, ast.Attribute):
                base = dotted_name(func.value)
                if base in math_aliases and func.attr in DISTANCE_MATH_FNS:
                    yield self.finding(
                        ctx, node,
                        f"'{base}.{func.attr}()' outside repro.kernels/"
                        f"repro.geometry; route distance math through "
                        f"kernel primitives or a Metric",
                    )

    def _check_accumulation(self, ctx: FileContext,
                            node: ast.Call) -> Iterator[Finding]:
        arg = node.args[0]
        if not isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            return
        if self._is_coordinate_accumulation(arg.elt):
            yield self.finding(
                ctx, node,
                "per-coordinate distance accumulation loop; use "
                "repro.kernels primitives (pairwise_within / "
                "neighbors_in_eps) or a Metric instance",
            )

    @staticmethod
    def _is_coordinate_accumulation(elt: ast.AST) -> bool:
        """A squared/powered coordinate difference: ``(a-b)*(a-b)``,
        ``(a-b)**2``, ``abs(a-b)**p``."""
        for sub in ast.walk(elt):
            if not isinstance(sub, ast.BinOp):
                continue
            if not isinstance(sub.op, (ast.Mult, ast.Pow)):
                continue
            for part in (sub.left, sub.right):
                inner = part
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "abs" and inner.args):
                    inner = inner.args[0]
                if isinstance(inner, ast.BinOp) and isinstance(
                    inner.op, ast.Sub
                ):
                    return True
        return False
