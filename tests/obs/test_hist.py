"""Unit tests for the fixed log-bucket latency histograms."""

import math

import pytest

from repro.obs.hist import (
    BUCKET_BOUNDS_S,
    BUCKET_GROWTH,
    BUCKET_START_S,
    HISTOGRAM_FIELDS,
    N_BUCKETS,
    HistogramTimer,
    LatencyHistogram,
    bucket_index,
)


class TestBucketMath:
    def test_bounds_are_strictly_growing_base2(self):
        assert len(BUCKET_BOUNDS_S) == N_BUCKETS
        assert BUCKET_BOUNDS_S[0] == BUCKET_START_S
        for lo, hi in zip(BUCKET_BOUNDS_S, BUCKET_BOUNDS_S[1:]):
            assert hi == pytest.approx(lo * BUCKET_GROWTH)

    def test_boundary_is_inclusive_upper_bound(self):
        # Prometheus `le` semantics: a value exactly on a bucket boundary
        # counts in that bucket, the next representable value above it in
        # the following one.
        for i, bound in enumerate(BUCKET_BOUNDS_S):
            assert bucket_index(bound) == i
            above = math.nextafter(bound, math.inf)
            expected = i + 1 if i + 1 < N_BUCKETS else N_BUCKETS
            assert bucket_index(above) == min(expected, N_BUCKETS)

    def test_tiny_and_nonpositive_values_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(BUCKET_START_S / 2) == 0

    def test_overflow_bucket(self):
        assert bucket_index(BUCKET_BOUNDS_S[-1] * 2) == N_BUCKETS

    def test_interior_value_lands_between_its_bounds(self):
        value = 3e-6  # between the 2 µs and 4 µs boundaries
        idx = bucket_index(value)
        assert BUCKET_BOUNDS_S[idx - 1] < value <= BUCKET_BOUNDS_S[idx]


class TestLatencyHistogram:
    def test_observe_updates_count_sum_min_max(self):
        h = LatencyHistogram()
        for v in (1e-6, 4e-6, 1e-3):
            h.observe(v)
        assert h.count == 3
        assert h.sum_s == pytest.approx(1e-6 + 4e-6 + 1e-3)
        assert h.max_s == 1e-3
        assert h.min_s == 1e-6

    def test_quantile_upper_bound_and_max_clamp(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.observe(1.5e-6)  # second bucket (le = 2 µs)
        h.observe(5e-3)
        # p50 reports the boundary of the bucket holding the median...
        assert h.quantile(0.5) == pytest.approx(2e-6)
        # ...and extreme quantiles never exceed the observed max.
        assert h.quantile(1.0) == pytest.approx(5e-3)
        assert h.quantile(0.995) <= h.max_s

    def test_quantile_empty_and_range_check(self):
        h = LatencyHistogram()
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_overflow_quantile_returns_max(self):
        h = LatencyHistogram()
        h.observe(BUCKET_BOUNDS_S[-1] * 10)
        assert h.quantile(0.99) == h.max_s

    def test_bucket_items_cumulative_and_inf_terminated(self):
        h = LatencyHistogram()
        h.observe(1e-6)
        h.observe(1e-6)
        h.observe(3e-6)
        items = list(h.bucket_items())
        bounds = [b for b, _ in items]
        counts = [c for _, c in items]
        assert bounds[-1] == math.inf
        assert counts[-1] == 3
        assert counts == sorted(counts)  # cumulative, monotone
        # Collapsed: nothing after the last non-empty finite bucket.
        assert bounds[-2] == BUCKET_BOUNDS_S[bucket_index(3e-6)]

    def test_merge_matches_pooled_observations(self):
        a, b, pooled = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for i in range(50):
            v = (i + 1) * 1e-6
            (a if i % 2 else b).observe(v)
            pooled.observe(v)
        a.merge(b)
        assert a.counts == pooled.counts
        assert a.count == pooled.count
        assert a.sum_s == pytest.approx(pooled.sum_s)
        assert a.max_s == pooled.max_s
        assert a.min_s == pooled.min_s

    def test_state_round_trip(self):
        h = LatencyHistogram()
        for v in (1e-6, 1e-4, 2.0):
            h.observe(v)
        clone = LatencyHistogram.from_state(h.state())
        assert clone.counts == h.counts
        assert clone.count == h.count
        assert clone.sum_s == h.sum_s
        assert clone.percentiles() == h.percentiles()

    def test_percentiles_keys(self):
        h = LatencyHistogram()
        h.observe(1e-5)
        assert set(h.percentiles()) == {"p50_s", "p95_s", "p99_s", "max_s"}

    def test_bool_reflects_observations(self):
        h = LatencyHistogram()
        assert not h
        h.observe(1e-6)
        assert h


class TestHistogramTimer:
    def test_records_one_observation(self):
        h = LatencyHistogram()
        with h.timer():
            pass
        assert h.count == 1
        assert h.sum_s >= 0.0

    def test_not_reentrant(self):
        h = LatencyHistogram()
        t = HistogramTimer(h)
        with t:
            with pytest.raises(RuntimeError):
                t.__enter__()  # sgblint: disable=SGB004 -- re-entrancy guard test
        # reusable sequentially after a clean exit
        with t:
            pass
        assert h.count == 2

    def test_exit_without_enter_raises(self):
        t = HistogramTimer(LatencyHistogram())
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)


def test_histogram_fields_are_well_formed():
    # The exporter and MetricBag treat these as the always-present set.
    assert len(set(HISTOGRAM_FIELDS)) == len(HISTOGRAM_FIELDS)
    for name in HISTOGRAM_FIELDS:
        assert not name.endswith("_s")
