"""Similarity predicate (Definition 2) tests."""

import pytest

from repro.core.distance import LINF
from repro.core.predicate import SimilarityPredicate
from repro.errors import InvalidParameterError


class TestSimilarityPredicate:
    def test_basic(self):
        xi = SimilarityPredicate(eps=3, metric="linf")
        assert xi((1, 1), (3, 3))
        assert xi((1, 1), (4, 4))
        assert not xi((1, 1), (4, 4.5))

    def test_l2_default(self):
        xi = SimilarityPredicate(eps=5)
        assert xi.metric.name == "l2"
        assert xi((0, 0), (3, 4))
        assert not xi((0, 0), (3, 4.1))

    def test_metric_instance(self):
        xi = SimilarityPredicate(eps=1, metric=LINF)
        assert xi.metric is LINF

    def test_negative_eps_rejected(self):
        with pytest.raises(InvalidParameterError):
            SimilarityPredicate(eps=-0.1)

    def test_zero_eps_is_equality(self):
        xi = SimilarityPredicate(eps=0)
        assert xi((1, 2), (1, 2))
        assert not xi((1, 2), (1, 2.0000001))

    def test_distance_helper(self):
        xi = SimilarityPredicate(eps=1, metric="l2")
        assert xi.distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_repr(self):
        xi = SimilarityPredicate(eps=2.5, metric="linf")
        assert "2.5" in repr(xi) and "linf" in repr(xi)
