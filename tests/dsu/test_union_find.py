"""Union-Find tests with a networkx connectivity oracle."""

import random

import pytest

from repro.dsu.union_find import UnionFind


class TestBasics:
    def test_fresh_elements_are_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.n_components == 3
        assert not uf.connected("a", "b")
        assert uf.component_size("a") == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert len(uf) == 1
        assert uf.n_components == 1

    def test_union_merges(self):
        uf = UnionFind()
        uf.union(1, 2)
        assert uf.connected(1, 2)
        assert uf.n_components == 1
        assert uf.component_size(1) == 2

    def test_union_transitive(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        uf.union(4, 5)
        assert uf.connected(1, 3)
        assert not uf.connected(1, 4)
        assert uf.n_components == 2

    def test_union_same_set_noop(self):
        uf = UnionFind()
        uf.union(1, 2)
        root = uf.find(1)
        assert uf.union(1, 2) == root
        assert uf.n_components == 1

    def test_union_adds_unknown_elements(self):
        uf = UnionFind()
        uf.union("x", "y")
        assert "x" in uf and "y" in uf

    def test_connected_unknown_elements(self):
        uf = UnionFind()
        uf.add(1)
        assert not uf.connected(1, 99)
        assert not uf.connected(98, 99)

    def test_groups_materialization(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.add(5)
        groups = {frozenset(v) for v in uf.groups().values()}
        assert groups == {frozenset({1, 2}), frozenset({3, 4}),
                          frozenset({5})}

    def test_find_path_compression_stability(self):
        uf = UnionFind()
        for i in range(100):
            uf.union(i, i + 1)
        root = uf.find(0)
        assert all(uf.find(i) == root for i in range(101))
        assert uf.component_size(50) == 101


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_unions_match_components(self, seed):
        nx = pytest.importorskip("networkx")
        rng = random.Random(seed)
        n = 120
        uf = UnionFind(range(n))
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for _ in range(150):
            a, b = rng.randrange(n), rng.randrange(n)
            uf.union(a, b)
            g.add_edge(a, b)
        ours = {frozenset(v) for v in uf.groups().values()}
        theirs = {frozenset(c) for c in nx.connected_components(g)}
        assert ours == theirs
        assert uf.n_components == nx.number_connected_components(g)
