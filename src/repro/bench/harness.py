"""Experiment harness: timing, normalization, and report formatting.

Each experiment in :mod:`repro.bench.experiments` produces a
:class:`Report` — a titled table of rows that prints in the same shape as
the corresponding paper table/figure series (methods × parameter axis).
"""

from __future__ import annotations

import os
import subprocess
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def time_call(fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_stamp() -> Dict[str, Any]:
    """Provenance stamp every ``BENCH_*.json`` payload carries.

    Numbers without the commit they came from, the kernel backend that
    produced them, and the core count of the machine are not comparable
    across runs; the bench scripts attach this dict under ``"stamp"``.
    ``commit`` is None outside a git checkout (e.g. an sdist install).
    """
    try:
        commit: Optional[str] = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = None
    from repro import kernels

    return {
        "commit": commit,
        "backend": kernels.active_backend(),
        "cpu_count": os.cpu_count(),
    }


def normalize_points(
    points: Sequence[Sequence[float]],
) -> List[Tuple[float, ...]]:
    """Min-max normalize each dimension into [0, 1].

    The paper sweeps ε over 0.1–0.9, which presumes normalized grouping
    attributes; the harness normalizes extracted attribute pairs the same
    way.  Degenerate dimensions (constant value) map to 0.
    """
    if not points:
        return []
    dim = len(points[0])
    lo = [min(p[d] for p in points) for d in range(dim)]
    hi = [max(p[d] for p in points) for d in range(dim)]
    span = [(h - l) if h > l else 1.0 for l, h in zip(lo, hi)]
    return [
        tuple((p[d] - lo[d]) / span[d] for d in range(dim)) for p in points
    ]


class Report:
    """A titled result table with fixed column order."""

    def __init__(self, experiment_id: str, title: str, columns: List[str],
                 notes: str = ""):
        self.experiment_id = experiment_id
        self.title = title
        self.columns = columns
        self.notes = notes
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    # ------------------------------------------------------------------
    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def format(self) -> str:
        header = [self.experiment_id + " — " + self.title]
        if self.notes:
            header.append(self.notes)
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows))
            if self.rows else len(c)
            for c in self.columns
        }
        line = " | ".join(c.ljust(widths[c]) for c in self.columns)
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        body = [
            " | ".join(_fmt(r.get(c)).ljust(widths[c]) for c in self.columns)
            for r in self.rows
        ]
        return "\n".join(header + ["", line, sep] + body)

    def to_csv(self) -> str:
        out = [",".join(self.columns)]
        for row in self.rows:
            out.append(",".join(_fmt(row.get(c)) for c in self.columns))
        return "\n".join(out)

    def ascii_chart(self, x_column: str, series: List[str],
                    width: int = 50, log: bool = True) -> str:
        """Render series as horizontal bar charts (log-scaled by default) —
        a terminal-friendly stand-in for the paper's log-axis figures."""
        import math

        values = [
            v for name in series for v in self.column(name)
            if isinstance(v, (int, float)) and v > 0
        ]
        if not values:
            return f"{self.experiment_id}: no data to chart"
        lo, hi = min(values), max(values)

        def bar(v) -> str:
            if not isinstance(v, (int, float)) or v <= 0:
                return ""
            if log and hi > lo:
                frac = (math.log(v) - math.log(lo)) / (
                    math.log(hi) - math.log(lo)
                )
            elif hi > lo:
                frac = (v - lo) / (hi - lo)
            else:
                frac = 1.0
            return "#" * max(1, int(round(frac * width)))

        label_w = max(len(s) for s in series)
        x_w = max((len(_fmt(r.get(x_column))) for r in self.rows),
                  default=1)
        out = [f"{self.experiment_id} — {self.title} "
               f"({'log' if log else 'linear'} scale)"]
        for row in self.rows:
            out.append(f"{x_column}={_fmt(row.get(x_column)).ljust(x_w)}")
            for name in series:
                v = row.get(name)
                out.append(
                    f"  {name.ljust(label_w)} |{bar(v)} {_fmt(v)}"
                )
        return "\n".join(out)

    def __repr__(self) -> str:
        return f"Report({self.experiment_id!r}, {len(self.rows)} rows)"


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.001 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) vs log(x) — the empirical growth
    exponent used to validate the Table 1 complexity bounds."""
    import math

    pairs = [(math.log(x), math.log(y)) for x, y in zip(xs, ys)
             if x > 0 and y > 0]
    n = len(pairs)
    if n < 2:
        return float("nan")
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    # sgblint: disable-next-line=SGB002 -- log-log regression slope, not a distance
    num = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    # sgblint: disable-next-line=SGB002 -- regression denominator, not a distance
    den = sum((x - mean_x) ** 2 for x, _ in pairs)
    return num / den if den else float("nan")
