"""Built-in sgblint rules.  Importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import = register)
    backend_discipline,
    blocking_async,
    cancel_coverage,
    determinism,
    error_taxonomy,
    foldback_safety,
    lock_discipline,
    metrics_naming,
    picklability,
    resource_escape,
    span_safety,
)

__all__ = [
    "determinism",
    "backend_discipline",
    "metrics_naming",
    "span_safety",
    "picklability",
    "error_taxonomy",
    "lock_discipline",
    "blocking_async",
    "cancel_coverage",
    "resource_escape",
    "foldback_safety",
]
