"""SGB-Any unit tests."""

import pytest

from repro.core.api import sgb_any
from repro.core.sgb_any import SGBAnyOperator
from repro.errors import InvalidParameterError

STRATEGIES = [
    "all-pairs", "index", "grid", "kdtree", "rtree-bulk", "hilbert-grid",
]


class TestParameterValidation:
    def test_negative_eps(self):
        with pytest.raises(InvalidParameterError):
            SGBAnyOperator(eps=-1)

    def test_unknown_strategy(self):
        with pytest.raises(InvalidParameterError):
            SGBAnyOperator(eps=1, strategy="voronoi")

    def test_grid_eps_zero_falls_back_to_naive(self):
        # eps == 0 is the equality-grouping degeneracy; the grid strategy
        # cannot represent it (cell side is eps), so the operator silently
        # takes the naive path instead of raising.
        op = SGBAnyOperator(eps=0, strategy="grid")
        assert op.strategy_name == "all-pairs"

    def test_hilbert_grid_eps_zero_falls_back_to_naive(self):
        op = SGBAnyOperator(eps=0, strategy="hilbert-grid")
        assert op.strategy_name == "all-pairs"

    def test_grid_strategy_itself_rejects_eps_zero(self):
        from repro.core.sgb_any import GridAnyStrategy
        from repro.core.distance import resolve_metric

        with pytest.raises(InvalidParameterError):
            GridAnyStrategy(0.0, resolve_metric("l2"))

    def test_dimension_consistency(self):
        op = SGBAnyOperator(eps=1)
        op.add((1, 2))
        with pytest.raises(InvalidParameterError):
            op.add((1,))

    def test_finalize_twice(self):
        op = SGBAnyOperator(eps=1)
        op.finalize()
        with pytest.raises(RuntimeError):
            op.finalize()


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestGrouping:
    def test_empty(self, strategy):
        assert sgb_any([], eps=1, strategy=strategy).n_groups == 0

    def test_single(self, strategy):
        assert sgb_any([(3, 3)], eps=1, strategy=strategy).labels == [0]

    def test_chain_merges(self, strategy):
        # each consecutive pair within eps; transitively one group
        pts = [(0, 0), (1, 0), (2, 0), (3, 0)]
        res = sgb_any(pts, eps=1.2, metric="l2", strategy=strategy)
        assert res.n_groups == 1

    def test_two_components(self, strategy):
        pts = [(0, 0), (1, 0), (10, 0), (11, 0)]
        res = sgb_any(pts, eps=1.5, strategy=strategy)
        assert res.n_groups == 2
        assert res.group_sizes() == [2, 2]

    def test_late_point_merges_groups(self, strategy):
        # paper Example 2: a5 bridges g1 and g2 -> one group of 5
        pts = [(1, 6), (2, 7), (6, 4), (7, 5), (4, 5.5)]
        res = sgb_any(pts, eps=3, metric="linf", strategy=strategy)
        assert res.group_sizes() == [5]

    def test_l2_vs_linf_differ(self, strategy):
        # diagonal neighbours: within L-inf 1 but L2 distance sqrt(2)
        pts = [(0, 0), (1, 1)]
        assert sgb_any(pts, 1, "linf", strategy).n_groups == 1
        assert sgb_any(pts, 1, "l2", strategy).n_groups == 2

    def test_duplicates(self, strategy):
        res = sgb_any([(2, 2)] * 5 + [(9, 9)], eps=0.5, strategy=strategy)
        assert sorted(res.group_sizes()) == [1, 5]

    def test_labels_in_first_appearance_order(self, strategy):
        pts = [(0, 0), (10, 10), (0.5, 0)]
        res = sgb_any(pts, eps=1, strategy=strategy)
        assert res.labels == [0, 1, 0]


class TestStrategyNames:
    @pytest.mark.parametrize("name,expected", [
        ("all-pairs", "all-pairs"), ("naive", "all-pairs"),
        ("index", "index"), ("rtree", "index"), ("grid", "grid"),
    ])
    def test_aliases(self, name, expected):
        assert SGBAnyOperator(eps=1, strategy=name).strategy_name == expected
