"""Core SGB operators: distance metrics, predicates, SGB-All and SGB-Any."""

from repro.core.api import sgb_all, sgb_any, sgb_stream
from repro.core.around import sgb_around_nd
from repro.core.cancel import CancelToken
from repro.core.distance import L1, L2, LINF, Metric, MinkowskiMetric, resolve_metric
from repro.core.predicate import SimilarityPredicate
from repro.core.result import ELIMINATED, GroupingResult
from repro.core.sgb_1d import sgb_around, sgb_segment
from repro.core.sgb_all import SGBAllOperator
from repro.core.sgb_any import SGBAnyOperator

__all__ = [
    "sgb_all",
    "sgb_any",
    "sgb_stream",
    "sgb_segment",
    "sgb_around",
    "sgb_around_nd",
    "SGBAllOperator",
    "SGBAnyOperator",
    "CancelToken",
    "GroupingResult",
    "ELIMINATED",
    "SimilarityPredicate",
    "Metric",
    "MinkowskiMetric",
    "resolve_metric",
    "L1",
    "L2",
    "LINF",
]
