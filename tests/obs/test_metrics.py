"""Unit tests for the repro.obs counter/span primitives."""

import time

import pytest

from repro.obs import MetricBag, NodeMetrics, span
from repro.obs.metrics import EXEC_COUNTER_FIELDS, SGB_COUNTER_FIELDS


class TestMetricBag:
    def test_empty_bag_is_falsy(self):
        bag = MetricBag()
        assert not bag
        assert bag.as_dict() == {}

    def test_incr_and_get(self):
        bag = MetricBag()
        bag.incr("points")
        bag.incr("points", 4)
        assert bag.get("points") == 5
        assert bag.get("missing") == 0
        assert bag.get("missing", -1) == -1
        assert bag

    def test_timings_suffixed_in_as_dict(self):
        bag = MetricBag()
        bag.add_time("ingest", 0.25)
        bag.add_time("ingest", 0.25)
        assert bag.time("ingest") == 0.5
        assert bag.as_dict() == {"ingest_s": 0.5}

    def test_merge_sums_counters_and_timings(self):
        a = MetricBag()
        a.incr("candidates", 3)
        a.add_time("probe", 1.0)
        b = MetricBag()
        b.incr("candidates", 2)
        b.incr("points")
        b.add_time("probe", 0.5)
        a.merge(b)
        assert a.get("candidates") == 5
        assert a.get("points") == 1
        assert a.time("probe") == 1.5

    def test_span_context_manager_accumulates(self):
        bag = MetricBag()
        with bag.span("work"):
            time.sleep(0.001)
        assert bag.time("work") > 0

    def test_module_span_tolerates_none_bag(self):
        # The None-bag span is the zero-overhead path operators use when
        # uninstrumented; it must be a no-op, not an error.
        with span(None, "work"):
            pass
        bag = MetricBag()
        with span(bag, "work"):
            pass
        assert "work_s" in bag.as_dict()


class TestCounterVocabulary:
    def test_sgb_fields_match_stream_stats(self):
        # StreamStats and the batch MetricBag share one field vocabulary.
        from repro.streaming.stats import StreamStats

        stats = StreamStats()
        for field in SGB_COUNTER_FIELDS:
            assert hasattr(stats, field)

    def test_exec_fields_disjoint_from_sgb_fields(self):
        assert not set(EXEC_COUNTER_FIELDS) & set(SGB_COUNTER_FIELDS)


class TestNodeMetrics:
    def test_record_counts_rows_and_loops(self):
        nm = NodeMetrics()
        assert list(nm.record(iter([(1,), (2,), (3,)]))) == [(1,), (2,), (3,)]
        assert nm.rows_out == 3
        assert nm.loops == 1
        list(nm.record(iter([(4,)])))
        assert nm.rows_out == 4
        assert nm.loops == 2

    def test_record_times_producer_not_consumer(self):
        def rows():
            yield (1,)
            yield (2,)

        nm = NodeMetrics()
        for _ in nm.record(rows()):
            time.sleep(0.01)  # consumer delay must not be charged
        assert nm.time_s < 0.01

    def test_as_dict_omits_empty_counters(self):
        nm = NodeMetrics()
        list(nm.record(iter([])))
        d = nm.as_dict()
        assert d["rows"] == 0
        assert d["loops"] == 1
        assert "counters" not in d
        nm.bag.incr("rows_skipped_null")
        assert nm.as_dict()["counters"] == {"rows_skipped_null": 1}


class TestTimingNamespace:
    def test_counter_names_ending_in_s_rejected(self):
        # as_dict() suffixes timings with `_s`; a counter named like one
        # would silently collide with a timing in the flattened dict.
        bag = MetricBag()
        with pytest.raises(ValueError):
            bag.incr("wall_time_s")  # sgblint: disable=SGB003 -- rejection under test

    def test_timing_and_counter_coexist_without_collision(self):
        bag = MetricBag()
        bag.incr("ingest", 2)
        bag.add_time("ingest", 0.5)
        d = bag.as_dict()
        assert d["ingest"] == 2
        assert d["ingest_s"] == 0.5


class TestBagHistograms:
    def test_observe_and_summaries(self):
        bag = MetricBag()
        bag.observe("probe_latency", 1e-5)
        bag.observe("probe_latency", 2e-5)
        summaries = bag.histogram_summaries()
        assert summaries["probe_latency"]["count"] == 2
        assert bag  # non-empty with only histogram content

    def test_hist_timer_records(self):
        bag = MetricBag()
        with bag.hist_timer("micro_batch_latency"):
            pass
        assert bag.histogram("micro_batch_latency").count == 1

    def test_merge_folds_histograms(self):
        a, b = MetricBag(), MetricBag()
        a.observe("probe_latency", 1e-6)
        b.observe("probe_latency", 1e-3)
        b.observe("distance_batch_latency", 1e-4)
        a.merge(b)
        assert a.histogram("probe_latency").count == 2
        assert a.histogram("distance_batch_latency").count == 1
        assert b.histogram("probe_latency").count == 1  # source untouched


class TestSpanGuards:
    def test_span_exit_without_enter_raises(self):
        bag = MetricBag()
        sp = bag.span("work")  # sgblint: disable=SGB004 -- deliberately unentered
        with pytest.raises(RuntimeError):
            sp.__exit__(None, None, None)

    def test_span_not_reentrant_while_open(self):
        bag = MetricBag()
        sp = bag.span("work")
        with sp:
            with pytest.raises(RuntimeError):
                sp.__enter__()  # sgblint: disable=SGB004 -- re-entrancy guard test
        # sequential reuse after a clean exit is fine
        with sp:
            pass

    def test_span_records_time_despite_exception(self):
        bag = MetricBag()
        with pytest.raises(KeyError):
            with bag.span("work"):
                time.sleep(0.001)
                raise KeyError("boom")
        assert bag.time("work") > 0


class TestNodeMetricsCloseSafety:
    def test_early_close_charges_inflight_time(self):
        # LIMIT-style early stop: the consumer abandons the iterator
        # mid-stream; the time spent producing the unconsumed next row
        # (and the segment since the last yield) must still be charged.
        def slow_rows():
            yield (1,)
            time.sleep(0.01)
            yield (2,)

        nm = NodeMetrics()
        it = nm.record(slow_rows())
        next(it)
        next(it)
        it.close()
        assert nm.time_s >= 0.01
        assert nm.rows_out == 2

    def test_producer_exception_charges_time(self):
        def exploding_rows():
            yield (1,)
            time.sleep(0.01)
            raise RuntimeError("producer died")

        nm = NodeMetrics()
        it = nm.record(exploding_rows())
        next(it)
        with pytest.raises(RuntimeError):
            next(it)
        assert nm.time_s >= 0.01
        assert nm.rows_out == 1

    def test_no_double_charge_on_clean_exhaustion(self):
        nm = NodeMetrics()
        rows = list(nm.record(iter([(1,)] * 5)))
        assert len(rows) == 5
        # A clean pass over a trivial iterator stays far under the 10 ms
        # sentinel used above — double charging the finally block would
        # not, because `charged` resets after every yield.
        assert nm.time_s < 0.01
