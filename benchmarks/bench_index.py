#!/usr/bin/env python
"""Index-layer benchmark: bulk loading, curve presorting, batch probes.

Three sections, written to ``BENCH_index.json``:

* **build** — R-tree construction: STR bulk loading and Hilbert-packed
  bulk loading against insert-at-a-time Guttman construction, plus grid
  bulk build with and without Hilbert presorting.  Gate: STR must beat
  incremental construction by ``--min-build-speedup`` (default 5x).
* **probe** — end-to-end SGB-Any wall clock per strategy (the batch
  index family against the incremental R-tree baseline).  Gate: the
  k-d tree strategy must beat the ``index`` baseline by
  ``--min-probe-speedup`` (default 2x).
* **parity** — group memberships across every SGB-Any strategy and both
  kernel backends must be bit-identical.  Gate: any mismatch fails.

Usage::

    PYTHONPATH=src python benchmarks/bench_index.py [--quick]
        [--n N] [--repeats R] [--out BENCH_index.json]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.bench.experiments import uniform_points  # noqa: E402
from repro.bench.harness import bench_stamp  # noqa: E402
from repro.core.api import sgb_any  # noqa: E402
from repro.geometry.rectangle import Rect  # noqa: E402
from repro.index.grid import GridIndex  # noqa: E402
from repro.index.rtree import RTree  # noqa: E402

STRATEGIES = ["index", "grid", "kdtree", "rtree-bulk", "hilbert-grid"]
EPS = 1.0


def _best_of(repeats, fn):
    best = float("inf")
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def bench_build(points, repeats):
    entries = [(Rect.from_point(p), i) for i, p in enumerate(points)]

    def incremental():
        tree = RTree(max_entries=16)
        for rect, i in entries:
            tree.insert(rect, i)

    times = {
        "incremental": _best_of(repeats, incremental),
        "str": _best_of(
            repeats, lambda: RTree.bulk_load(entries, max_entries=16)
        ),
        "hilbert": _best_of(
            repeats,
            lambda: RTree.bulk_load(entries, max_entries=16,
                                    presort="hilbert"),
        ),
        "grid_bulk_hilbert": _best_of(
            repeats,
            lambda: GridIndex.bulk_build(
                [(p, i) for i, p in enumerate(points)], cell_size=EPS
            ),
        ),
        "grid_bulk_unsorted": _best_of(
            repeats,
            lambda: GridIndex.bulk_build(
                [(p, i) for i, p in enumerate(points)], cell_size=EPS,
                presort="none",
            ),
        ),
    }
    return {
        "n": len(points),
        "times_s": times,
        "str_speedup": times["incremental"] / times["str"],
        "hilbert_speedup": times["incremental"] / times["hilbert"],
    }


def bench_probe(points, repeats):
    times = {}
    groups = {}
    for strategy in STRATEGIES:
        times[strategy] = _best_of(
            repeats, lambda s=strategy: sgb_any(points, EPS, "l2", s)
        )
        groups[strategy] = sgb_any(points, EPS, "l2", strategy).n_groups
    assert len(set(groups.values())) == 1, groups
    baseline = times["index"]
    return {
        "n": len(points),
        "eps": EPS,
        "times_s": times,
        "n_groups": groups["index"],
        "speedup_vs_index": {
            s: baseline / t for s, t in times.items() if s != "index"
        },
    }


def bench_parity(n):
    points = uniform_points(n, seed=7)
    labels = {}
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            for strategy in ["all-pairs"] + STRATEGIES:
                labels[(backend, strategy)] = sgb_any(
                    points, EPS, "l2", strategy
                ).labels
    reference = next(iter(labels.values()))
    mismatches = sorted(
        f"{backend}/{strategy}"
        for (backend, strategy), got in labels.items()
        if got != reference
    )
    return {
        "n": n,
        "backends": list(kernels.available_backends()),
        "strategies": ["all-pairs"] + STRATEGIES,
        "identical": not mismatches,
        "mismatches": mismatches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--n", type=int, default=None,
                        help="points for build/probe (default 20000; "
                             "2000 with --quick)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats, best-of (default 2; "
                             "1 with --quick)")
    parser.add_argument("--min-build-speedup", type=float, default=5.0,
                        help="required STR-vs-incremental build speedup")
    parser.add_argument("--min-probe-speedup", type=float, default=2.0,
                        help="required kdtree-vs-index SGB-Any speedup")
    parser.add_argument("--out", type=str, default=None,
                        help="output JSON path (default: BENCH_index.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    n = args.n or (2000 if args.quick else 20000)
    repeats = args.repeats or (1 if args.quick else 2)
    parity_n = 500 if args.quick else 1500
    out_path = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_index.json"
    )

    points = uniform_points(n)
    build = bench_build(points, repeats)
    print(
        f"[build] n={n} "
        + " ".join(f"{k}={v * 1000:.1f}ms"
                   for k, v in build["times_s"].items())
        + f" str_speedup={build['str_speedup']:.1f}x"
    )
    probe = bench_probe(points, repeats)
    print(
        f"[probe] n={n} eps={EPS} "
        + " ".join(f"{k}={v * 1000:.1f}ms"
                   for k, v in probe["times_s"].items())
        + f" kdtree_speedup={probe['speedup_vs_index']['kdtree']:.1f}x"
    )
    parity = bench_parity(parity_n)
    print(
        f"[parity] n={parity_n} backends={parity['backends']} "
        f"identical={parity['identical']}"
    )

    failures = []
    if build["str_speedup"] < args.min_build_speedup:
        failures.append(
            f"STR bulk load speedup {build['str_speedup']:.2f}x "
            f"< {args.min_build_speedup}x"
        )
    kd_speedup = probe["speedup_vs_index"]["kdtree"]
    if kd_speedup < args.min_probe_speedup:
        failures.append(
            f"kdtree SGB-Any speedup {kd_speedup:.2f}x "
            f"< {args.min_probe_speedup}x"
        )
    if not parity["identical"]:
        failures.append(f"membership mismatches: {parity['mismatches']}")

    payload = {
        "benchmark": "index-layer",
        "stamp": bench_stamp(),
        "config": {
            "n": n,
            "parity_n": parity_n,
            "eps": EPS,
            "repeats": repeats,
            "quick": args.quick,
            "min_build_speedup": args.min_build_speedup,
            "min_probe_speedup": args.min_probe_speedup,
        },
        "build": build,
        "probe": probe,
        "parity": parity,
        "summary": {"all_ok": not failures, "failures": failures},
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
