"""SGB003 — metric and span name literals must export cleanly."""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.astutil import str_const
from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Methods whose first string argument is a metric/timing/histogram name
#: that ends up as (part of) a Prometheus series name.
NAME_METHODS = frozenset({
    "incr", "observe", "histogram", "hist_timer", "add_time", "span",
})

#: Free functions taking ``(bag_or_tracer, name)``.
NAME_FUNCTIONS = frozenset({"span", "maybe_span"})

#: Lower-snake, starting with a letter — the subset of Prometheus's
#: ``[a-zA-Z_:][a-zA-Z0-9_:]*`` this repo standardizes on (the exporter
#: prefixes ``sgb_`` and suffixes ``_s``/``_bucket`` itself, so colons,
#: uppercase, and leading underscores in the raw name would produce
#: inconsistent series).
NAME_RE = re.compile(r"[a-z][a-z0-9_]*\Z")


@register
class MetricsNamingRule(Rule):
    """String literals naming MetricBag counters, timings, histograms, or
    trace spans must be lower-snake Prometheus-safe names not ending in
    ``_s``.

    The Prometheus exporter (``repro.obs.export``) emits every counter as
    ``sgb_<name>_total`` and every timing as ``sgb_<name>_s``; names that
    are not ``[a-z][a-z0-9_]*`` produce series that scrape targets
    reject, and a *counter* ending in ``_s`` collides with the timing
    namespace (``MetricBag.as_dict`` suffixes timings with ``_s``, and
    ``MetricBag.incr`` raises on such names at runtime — this rule moves
    that failure to lint time).

    Checked call shapes::

        bag.incr("candidates")            # counters
        bag.observe("probe_latency", dt)  # histograms
        bag.hist_timer("probe_latency")
        bag.add_time("finalize", dt)      # timings
        bag.span("finalize")              # timing spans
        tracer.span("micro_batch")        # trace spans
        span(bag, "finalize")             # free-function form
        maybe_span(tracer, "ingest")

    Only literal names are checked; names built at runtime are the
    caller's responsibility (keep them rare).
    """

    id = "SGB003"
    title = "metric/span name literal is not Prometheus-exportable"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._name_literal(node)
            if name is None:
                continue
            if not NAME_RE.match(name):
                yield self.finding(
                    ctx, node,
                    f"metric/span name {name!r} is not lower-snake "
                    f"([a-z][a-z0-9_]*); it would export as an invalid "
                    f"or inconsistent Prometheus series",
                )
            elif name.endswith("_s"):
                yield self.finding(
                    ctx, node,
                    f"metric/span name {name!r} ends in '_s', which is "
                    f"reserved for the timing-suffix namespace "
                    f"(MetricBag.as_dict)",
                )

    @staticmethod
    def _name_literal(node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in NAME_METHODS:
            if node.args:
                return str_const(node.args[0])
        elif isinstance(func, ast.Name) and func.id in NAME_FUNCTIONS:
            if len(node.args) >= 2:
                return str_const(node.args[1])
        return None
