# sgblint: module=repro.core.fixture_metrics_bad
"""SGB003 true positives: names that would not export cleanly."""


def record(bag, tracer):
    bag.incr("CandidatePairs")  # uppercase
    bag.observe("probe-latency", 0.5)  # dash
    bag.add_time("finalize_s", 0.1)  # reserved _s suffix
    with tracer.span("Micro Batch"):  # space + uppercase
        pass
