"""Harness utility tests."""

import math

import pytest

from repro.bench.harness import (
    Report,
    fit_loglog_slope,
    normalize_points,
    time_call,
)


class TestTimeCall:
    def test_returns_result_and_positive_time(self):
        secs, result = time_call(lambda: sum(range(1000)))
        assert result == 499500
        assert secs >= 0


class TestNormalizePoints:
    def test_unit_square(self):
        pts = normalize_points([(0, 10), (5, 20), (10, 30)])
        assert pts[0] == (0.0, 0.0)
        assert pts[2] == (1.0, 1.0)
        assert pts[1] == (0.5, 0.5)

    def test_degenerate_dimension(self):
        pts = normalize_points([(5, 1), (5, 2)])
        assert pts == [(0.0, 0.0), (0.0, 1.0)]

    def test_empty(self):
        assert normalize_points([]) == []

    def test_all_values_in_unit_interval(self):
        import random

        rng = random.Random(2)
        raw = [(rng.uniform(-1000, 1000), rng.uniform(0, 1e6))
               for _ in range(100)]
        for p in normalize_points(raw):
            assert 0 <= p[0] <= 1 and 0 <= p[1] <= 1


class TestReport:
    def test_format_and_csv(self):
        r = Report("Table X", "demo", ["a", "b"], notes="note")
        r.add_row(a=1, b=0.5)
        r.add_row(a=2, b=None)
        text = r.format()
        assert "Table X — demo" in text
        assert "note" in text
        csv = r.to_csv()
        assert csv.splitlines()[0] == "a,b"
        assert csv.splitlines()[2] == "2,-"

    def test_column(self):
        r = Report("t", "t", ["a"])
        r.add_row(a=1)
        r.add_row(a=2)
        assert r.column("a") == [1, 2]

    def test_float_formatting(self):
        r = Report("t", "t", ["v"])
        r.add_row(v=0.000001)
        r.add_row(v=2.5)
        lines = r.format().splitlines()
        assert "1.000e-06" in lines[-2]
        assert "2.5" in lines[-1]


class TestAsciiChart:
    def make_report(self):
        r = Report("Fig X", "demo", ["eps", "fast", "slow"])
        r.add_row(eps=0.1, fast=0.001, slow=1.0)
        r.add_row(eps=0.2, fast=0.01, slow=10.0)
        return r

    def test_bars_scale_with_values(self):
        chart = self.make_report().ascii_chart("eps", ["fast", "slow"])
        lines = chart.splitlines()
        slow_bars = [l for l in lines if l.strip().startswith("slow")]
        fast_bars = [l for l in lines if l.strip().startswith("fast")]
        assert all(
            s.count("#") > f.count("#")
            for s, f in zip(slow_bars, fast_bars)
        )

    def test_log_scale_header(self):
        chart = self.make_report().ascii_chart("eps", ["fast"], log=True)
        assert "log scale" in chart
        chart = self.make_report().ascii_chart("eps", ["fast"], log=False)
        assert "linear scale" in chart

    def test_empty_report(self):
        r = Report("Fig Y", "empty", ["x", "y"])
        assert "no data" in r.ascii_chart("x", ["y"])

    def test_non_numeric_values_skipped(self):
        r = Report("Fig Z", "mixed", ["x", "y"])
        r.add_row(x=1, y=None)
        r.add_row(x=2, y=5.0)
        chart = r.ascii_chart("x", ["y"])
        assert "#" in chart


class TestLogLogSlope:
    def test_linear_growth(self):
        xs = [100, 200, 400, 800]
        ys = [x * 3.0 for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_quadratic_growth(self):
        xs = [100, 200, 400, 800]
        ys = [x * x / 1e6 for x in xs]
        assert fit_loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_insufficient_points(self):
        assert math.isnan(fit_loglog_slope([1], [1]))
