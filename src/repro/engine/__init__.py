"""Relational engine substrate: catalog, tables, executor, SQL facade."""

from repro.engine.catalog import Catalog
from repro.engine.database import Database, QueryResult, StatementResult
from repro.engine.schema import Column, Schema
from repro.engine.table import Table

__all__ = [
    "Database",
    "QueryResult",
    "StatementResult",
    "Catalog",
    "Table",
    "Schema",
    "Column",
]
