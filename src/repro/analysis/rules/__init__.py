"""Built-in sgblint rules.  Importing this package registers them all."""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (import = register)
    backend_discipline,
    determinism,
    error_taxonomy,
    metrics_naming,
    picklability,
    span_safety,
)

__all__ = [
    "determinism",
    "backend_discipline",
    "metrics_naming",
    "span_safety",
    "picklability",
    "error_taxonomy",
]
