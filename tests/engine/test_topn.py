"""TopN (fused ORDER BY + LIMIT) semantics: must match Sort + Limit
exactly, including NULL placement and mixed-direction multi-key orders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.database import Database


def make_db(rows):
    db = Database()
    db.execute("CREATE TABLE t (a int, b int)")
    db.insert("t", rows)
    return db


rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-5, 5)),
        st.one_of(st.none(), st.integers(-5, 5)),
    ),
    max_size=30,
)


class TestKnownCases:
    def test_basic_topn(self):
        db = make_db([(3, 0), (1, 0), (2, 0)])
        assert db.query(
            "SELECT a FROM t ORDER BY a LIMIT 2"
        ).column("a") == [1, 2]

    def test_descending(self):
        db = make_db([(3, 0), (1, 0), (2, 0)])
        assert db.query(
            "SELECT a FROM t ORDER BY a DESC LIMIT 2"
        ).column("a") == [3, 2]

    def test_nulls_first_ascending(self):
        db = make_db([(3, 0), (None, 0), (1, 0)])
        assert db.query(
            "SELECT a FROM t ORDER BY a LIMIT 2"
        ).column("a") == [None, 1]

    def test_nulls_last_descending(self):
        db = make_db([(3, 0), (None, 0), (1, 0)])
        assert db.query(
            "SELECT a FROM t ORDER BY a DESC LIMIT 3"
        ).column("a") == [3, 1, None]

    def test_limit_larger_than_input(self):
        db = make_db([(2, 0), (1, 0)])
        assert db.query(
            "SELECT a FROM t ORDER BY a LIMIT 99"
        ).column("a") == [1, 2]

    def test_limit_zero(self):
        db = make_db([(1, 0)])
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 0").rows == []

    def test_mixed_directions(self):
        db = make_db([(1, 1), (1, 2), (2, 1)])
        res = db.query("SELECT a, b FROM t ORDER BY a ASC, b DESC LIMIT 2")
        assert res.rows == [(1, 2), (1, 1)]


class TestEquivalenceWithSortLimit:
    @settings(max_examples=60, deadline=None)
    @given(rows=rows_strategy, limit=st.integers(0, 10),
           asc_a=st.booleans(), asc_b=st.booleans())
    def test_topn_equals_sort_then_limit(self, rows, limit, asc_a, asc_b):
        db = make_db(rows)
        da = "ASC" if asc_a else "DESC"
        dbdir = "ASC" if asc_b else "DESC"
        fused = db.query(
            f"SELECT a, b FROM t ORDER BY a {da}, b {dbdir} LIMIT {limit}"
        ).rows
        # force the unfused path with DISTINCT (rows are not necessarily
        # unique, so compare against a manual sort instead)
        def null_key(v, asc):
            return (v is not None, v)

        import functools

        def cmp(x, y):
            for idx, asc in ((0, asc_a), (1, asc_b)):
                ka, kb = null_key(x[idx], asc), null_key(y[idx], asc)
                if ka == kb:
                    continue
                if ka < kb:
                    return -1 if asc else 1
                return 1 if asc else -1
            return 0

        expected = sorted(rows, key=functools.cmp_to_key(cmp))[:limit]
        # ties make exact row order ambiguous; compare the key sequences
        fused_keys = [(r[0], r[1]) for r in fused]
        expected_keys = [(r[0], r[1]) for r in expected]
        assert sorted(map(repr, fused_keys)) == sorted(
            map(repr, expected_keys)
        )
        # and the fused output itself must be correctly ordered
        for x, y in zip(fused, fused[1:]):
            assert cmp(x, y) <= 0
