"""Micro-batcher mechanics: buffering, flush triggers, per-batch stats."""

import random

import pytest

from repro.core.api import sgb_stream
from repro.errors import (
    DimensionMismatchError,
    InvalidCoordinateError,
    InvalidParameterError,
    StreamStateError,
)
from repro.streaming import (
    MicroBatcher,
    StreamingSGBAny,
    total_of,
)


def random_points(n, seed=0):
    rng = random.Random(seed)
    return [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]


class TestBatching:
    def test_buffers_until_batch_size(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=3)
        mb.insert((0, 0))
        mb.insert((1, 1))
        assert mb.n_pending == 2
        assert mb.engine.n_points == 0
        mb.insert((2, 2))  # triggers the flush
        assert mb.n_pending == 0
        assert mb.engine.n_points == 3
        assert len(mb.batches) == 1
        assert mb.batches[0].size == 3

    def test_snapshot_flushes_pending(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=100)
        mb.extend([(0, 0), (0.5, 0), (9, 9)])
        assert mb.n_pending == 3
        snap = mb.snapshot()
        assert snap.n_points == 3
        assert snap.group_sizes() == [2, 1]
        assert mb.n_pending == 0

    def test_result_flushes_and_closes(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=100)
        mb.extend([(0, 0), (0.5, 0)])
        res = mb.result()
        assert res.n_points == 2
        assert mb.engine.closed

    def test_flush_on_empty_buffer_is_noop(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=2)
        mb.flush()
        assert mb.batches == []

    def test_rejects_bad_batch_size(self):
        with pytest.raises(InvalidParameterError):
            MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=0)

    def test_validation_is_eager_not_deferred_to_flush(self):
        """A bad row must fail the insert() that supplied it — buffering
        it would blow up a later snapshot()/result() instead."""
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=100)
        mb.insert((0, 0))
        with pytest.raises(InvalidCoordinateError):
            mb.insert((1, float("nan")))
        with pytest.raises(DimensionMismatchError):
            mb.insert((1, 2, 3))
        assert mb.n_points == 1  # bad rows were never buffered
        assert mb.snapshot().n_points == 1  # and flush stays clean

    def test_insert_after_result_fails_immediately(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=100)
        mb.extend([(0, 0), (9, 9)])
        mb.result()
        with pytest.raises(StreamStateError):
            mb.insert((1, 1))

    @pytest.mark.parametrize("batch_size", [1, 7, 64, 1000])
    def test_batch_partitioning(self, batch_size):
        pts = random_points(64)
        mb = MicroBatcher(StreamingSGBAny(eps=0.8), batch_size=batch_size)
        mb.extend(pts)
        mb.flush()
        assert sum(rec.size for rec in mb.batches) == 64
        full = [s for rec in mb.batches[:-1] for s in [rec.size]]
        assert all(s == min(batch_size, 64) for s in full)


class TestPerBatchStats:
    def test_deltas_sum_to_engine_totals(self):
        pts = random_points(50, seed=3)
        mb = MicroBatcher(StreamingSGBAny(eps=0.8), batch_size=7)
        mb.extend(pts)
        mb.flush()
        summed = total_of(mb.batches)
        assert summed.points == mb.stats.points == 50
        assert summed.index_probes == mb.stats.index_probes == 50
        assert summed.groups_merged == mb.stats.groups_merged
        assert summed.candidates == mb.stats.candidates
        assert summed.wall_time_s == pytest.approx(mb.stats.wall_time_s)

    def test_batch_records_are_labeled(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=2)
        mb.extend(random_points(5))
        mb.flush()
        assert [rec.seq for rec in mb.batches] == [0, 1, 2]
        assert [rec.size for rec in mb.batches] == [2, 2, 1]
        assert all(rec.wall_time_s >= 0 for rec in mb.batches)
        d = mb.batches[0].as_dict()
        assert d["seq"] == 0 and d["size"] == 2


class TestBatchSpanTags:
    def make_traced_batcher(self, batch_size=3):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=batch_size,
                          tracer=tracer)
        return mb, tracer

    def test_span_carries_backend_and_null_skips(self):
        from repro import kernels

        mb, tracer = self.make_traced_batcher()
        mb.extend([(0, 0), (1, 1)])
        mb.note_skipped_null(2)
        mb.insert((2, 2))  # flush
        (span,) = [r for r in tracer.records() if r.name == "micro_batch"]
        assert span.attrs["backend"] == kernels.active_backend()
        assert span.attrs["rows_skipped_null"] == 2
        assert span.attrs["size"] == 3

    def test_skip_counter_is_per_batch_delta_not_cumulative(self):
        mb, tracer = self.make_traced_batcher(batch_size=2)
        mb.note_skipped_null()
        mb.extend([(0, 0), (1, 1)])        # flush 1: one skip so far
        mb.note_skipped_null(3)
        mb.extend([(2, 2), (3, 3)])        # flush 2: three more
        mb.flush()                          # empty buffer: no span
        spans = [r for r in tracer.records() if r.name == "micro_batch"]
        assert [s.attrs["rows_skipped_null"] for s in spans] == [1, 3]
        assert mb.rows_skipped_null == 4    # lifetime total still kept

    def test_untraced_batcher_still_counts_skips(self):
        mb = MicroBatcher(StreamingSGBAny(eps=1.0), batch_size=2)
        mb.note_skipped_null(5)
        mb.extend([(0, 0), (1, 1)])
        assert mb.rows_skipped_null == 5

    def test_stream_view_null_rows_feed_batch_tags(self):
        from repro.engine.database import Database

        db = Database(trace=True)
        db.execute("CREATE TABLE t (x float, y float)")
        db.create_stream_view("sv", "t", ["x", "y"], "any", eps=1.0,
                              batch_size=4)
        db.insert("t", [(0.0, 0.0), (None, 1.0), (1.0, None), (2.0, 2.0),
                        (3.0, 3.0), (4.0, 4.0)])
        spans = [r for r in db.tracer.records() if r.name == "micro_batch"]
        assert sum(s.attrs["rows_skipped_null"] for s in spans) == 2
        assert all("backend" in s.attrs for s in spans)


class TestSgbStreamEntryPoint:
    def test_builds_any_engine(self):
        stream = sgb_stream("any", eps=1.0, batch_size=2)
        assert isinstance(stream, MicroBatcher)
        assert isinstance(stream.engine, StreamingSGBAny)

    def test_builds_all_engine_with_options(self):
        stream = sgb_stream("all", eps=1.0, on_overlap="eliminate",
                            tiebreak="first")
        assert stream.engine.on_overlap == "eliminate"

    def test_initial_points_are_ingested(self):
        stream = sgb_stream("any", eps=1.0, batch_size=2,
                            points=[(0, 0), (0.5, 0), (9, 9)])
        assert stream.snapshot().group_sizes() == [2, 1]

    def test_rejects_unknown_mode(self):
        with pytest.raises(InvalidParameterError):
            sgb_stream("some", eps=1.0)

    def test_rejects_nonpositive_eps(self):
        with pytest.raises(InvalidParameterError):
            sgb_stream("any", eps=0.0)
