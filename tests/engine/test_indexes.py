"""Secondary-index tests: table level and SQL/planner level."""

import datetime as dt

import pytest

from repro.engine.database import Database
from repro.engine.table import Table
from repro.errors import CatalogError


class TestTableIndexes:
    def test_create_covers_existing_rows(self):
        t = Table("t", [("a", "int")])
        t.insert_many([(3,), (1,), (2,)])
        idx = t.create_index("i", "a")
        assert list(idx.row_ids(1, 2)) == [1, 2]  # row positions of 1 and 2

    def test_insert_maintains_index(self):
        t = Table("t", [("a", "int")])
        idx = t.create_index("i", "a")
        t.insert((5,))
        t.insert((4,))
        assert list(idx.row_ids()) == [1, 0]  # key order 4, 5

    def test_nulls_not_indexed(self):
        t = Table("t", [("a", "int")])
        idx = t.create_index("i", "a")
        t.insert((None,))
        t.insert((1,))
        assert list(idx.row_ids()) == [1]

    def test_duplicate_index_name(self):
        t = Table("t", [("a", "int")])
        t.create_index("i", "a")
        with pytest.raises(CatalogError, match="already exists"):
            t.create_index("i", "a")

    def test_drop_index(self):
        t = Table("t", [("a", "int")])
        t.create_index("i", "a")
        t.drop_index("i")
        assert t.index_on("a") is None
        with pytest.raises(CatalogError):
            t.drop_index("i")

    def test_truncate_rebuilds(self):
        t = Table("t", [("a", "int")])
        t.insert((1,))
        idx = t.create_index("i", "a")
        t.truncate()
        assert list(t.indexes["i"].row_ids()) == []
        t.insert((9,))
        assert list(t.indexes["i"].row_ids()) == [0]

    def test_index_on_picks_matching_column(self):
        t = Table("t", [("a", "int"), ("b", "int")])
        t.create_index("ib", "b")
        assert t.index_on("a") is None
        assert t.index_on("b").name == "ib"


class TestSQLIndexes:
    @pytest.fixture
    def db(self):
        d = Database()
        d.execute("CREATE TABLE t (a int, b text, d date)")
        d.insert("t", [
            (i, f"r{i}", dt.date(1995, 1, 1) + dt.timedelta(days=i))
            for i in range(200)
        ])
        d.execute("CREATE INDEX idx_a ON t (a)")
        return d

    def test_equality_uses_index(self, db):
        plan = db.explain("SELECT b FROM t WHERE a = 42")
        assert "IndexScan" in plan and "SeqScan" not in plan
        assert db.query("SELECT b FROM t WHERE a = 42").rows == [("r42",)]

    def test_flipped_comparison_uses_index(self, db):
        plan = db.explain("SELECT b FROM t WHERE 42 = a")
        assert "IndexScan" in plan
        assert db.query("SELECT b FROM t WHERE 42 = a").rows == [("r42",)]

    @pytest.mark.parametrize("predicate,expected", [
        ("a < 5", 5), ("a <= 5", 6), ("a > 194", 5), ("a >= 194", 6),
        ("a BETWEEN 10 AND 19", 10), ("5 > a", 5),
    ])
    def test_range_predicates(self, db, predicate, expected):
        sql = f"SELECT count(*) FROM t WHERE {predicate}"
        assert "IndexScan" in db.explain(sql)
        assert db.query(sql).scalar() == expected

    def test_results_identical_with_and_without_index(self, db):
        sql = "SELECT b FROM t WHERE a BETWEEN 50 AND 60 ORDER BY b"
        with_index = db.query(sql).rows
        db.execute("DROP INDEX idx_a ON t")
        assert "SeqScan" in db.explain(sql)
        assert db.query(sql).rows == with_index

    def test_unindexed_column_still_filters(self, db):
        plan = db.explain("SELECT a FROM t WHERE b = 'r7'")
        assert "IndexScan" not in plan
        assert db.query("SELECT a FROM t WHERE b = 'r7'").scalar() == 7

    def test_residual_conjunct_filters_above_index(self, db):
        res = db.query("SELECT b FROM t WHERE a > 5 AND b = 'r7'")
        assert res.rows == [("r7",)]

    def test_date_index(self, db):
        db.execute("CREATE INDEX idx_d ON t (d)")
        sql = ("SELECT count(*) FROM t "
               "WHERE d < date '1995-01-01' + interval '10' day")
        # the comparison value is an expression, not a literal -> no index
        assert db.query(sql).scalar() == 10
        sql2 = "SELECT count(*) FROM t WHERE d >= date '1995-07-01'"
        assert "IndexScan" in db.explain(sql2)
        assert db.query(sql2).scalar() == 200 - 181

    def test_insert_after_create_index_visible(self, db):
        db.execute("INSERT INTO t VALUES (42, 'dup', NULL)")
        res = db.query("SELECT b FROM t WHERE a = 42")
        assert sorted(r[0] for r in res) == ["dup", "r42"]

    def test_if_not_exists(self, db):
        db.execute("CREATE INDEX IF NOT EXISTS idx_a ON t (a)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX idx_a ON t (a)")

    def test_index_with_join(self, db):
        db.execute("CREATE TABLE s (k int)")
        db.insert("s", [(7,), (8,)])
        res = db.query(
            "SELECT b FROM t, s WHERE a = k AND a < 100 ORDER BY b"
        )
        assert res.rows == [("r7",), ("r8",)]
        assert "IndexScan" in db.explain(
            "SELECT b FROM t, s WHERE a = k AND a < 100"
        )

    def test_null_literal_not_routed(self, db):
        plan = db.explain("SELECT b FROM t WHERE a = NULL")
        assert "IndexScan" not in plan
        assert db.query("SELECT b FROM t WHERE a = NULL").rows == []
