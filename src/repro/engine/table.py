"""Heap tables: an in-memory row store with schema validation,
secondary B+tree indexes, and cached ANALYZE statistics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine import types as T
from repro.engine.schema import Column, Schema
from repro.errors import CatalogError, InvalidParameterError
from repro.index.btree import BPlusTree

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.stats.collect import TableStats

#: A cached statistics snapshot is stale once the row count has drifted
#: by more than this fraction (and at least this many rows) since the
#: last ANALYZE.
_STALENESS_FRACTION = 0.2
_STALENESS_MIN_ROWS = 16


class TableIndex:
    """A secondary index: B+tree from column value to row position.

    NULLs are not indexed; the planner only routes predicates to an index
    when NULL rows could not match anyway.
    """

    def __init__(self, name: str, table: "Table", column: str):
        self.name = name.lower()
        self.table = table
        self.column = column.lower()
        self.column_index = table.schema.resolve(self.column)
        self.tree = BPlusTree()
        for row_id, row in enumerate(table.rows):
            self.note_insert(row, row_id)

    def note_insert(self, row: Tuple[Any, ...], row_id: int) -> None:
        key = row[self.column_index]
        if key is not None:
            self.tree.insert(key, row_id)

    def row_ids(self, low: Any = None, high: Any = None,
                include_low: bool = True, include_high: bool = True):
        return self.tree.range(low, high, include_low, include_high)

    def __repr__(self) -> str:
        return f"TableIndex({self.name!r} on {self.table.name}.{self.column})"


class Table:
    """A named, schema-validated collection of rows.

    Rows are plain tuples in column order.  Inserts coerce values to the
    declared column types (so ``"1995-01-01"`` lands as a ``date`` in a DATE
    column) and reject rows of the wrong arity.
    """

    def __init__(self, name: str, columns: Sequence[Tuple[str, str]]):
        if not columns:
            raise InvalidParameterError(f"table {name!r} needs at least one column")
        seen = set()
        cols: List[Column] = []
        for col_name, col_type in columns:
            lowered = col_name.lower()
            if lowered in seen:
                raise InvalidParameterError(
                    f"duplicate column {col_name!r} in table {name!r}"
                )
            seen.add(lowered)
            cols.append(Column(lowered, T.normalize_type(col_type), name.lower()))
        self.name = name.lower()
        self.schema = Schema(cols)
        self.rows: List[Tuple[Any, ...]] = []
        self.indexes: Dict[str, TableIndex] = {}
        self._insert_listeners: List[Any] = []
        #: Cached ANALYZE statistics (see :mod:`repro.stats.collect`);
        #: None until the first :meth:`analyze` / :meth:`active_stats`.
        self.stats: "Optional[TableStats]" = None

    def __len__(self) -> int:
        return len(self.rows)

    def insert(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.schema):
            raise InvalidParameterError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}"
            )
        coerced = tuple(
            T.coerce(value, col.type) for value, col in zip(row, self.schema)
        )
        self.rows.append(coerced)
        row_id = len(self.rows) - 1
        if self.indexes:
            for index in self.indexes.values():
                index.note_insert(coerced, row_id)
        for listener in self._insert_listeners:
            listener(coerced, row_id)

    # ------------------------------------------------------------------
    # insert listeners (streaming views subscribe to new rows)
    # ------------------------------------------------------------------
    def add_insert_listener(self, listener) -> None:
        """Register ``listener(row, row_id)`` to be called after inserts."""
        self._insert_listeners.append(listener)

    def remove_insert_listener(self, listener) -> None:
        """Unregister a listener (no-op if it was never registered)."""
        try:
            self._insert_listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # secondary indexes
    # ------------------------------------------------------------------
    def create_index(self, name: str, column: str) -> TableIndex:
        key = name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {name!r} already exists")
        index = TableIndex(key, self, column)
        self.indexes[key] = index
        return index

    def drop_index(self, name: str) -> None:
        try:
            del self.indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def index_on(self, column: str) -> Optional[TableIndex]:
        """Any index covering ``column`` (first created wins)."""
        column = column.lower()
        for index in self.indexes.values():
            if index.column == column:
                return index
        return None

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        # Auto-analyze on bulk load: if the batch pushed previously
        # collected statistics past staleness, refresh them now so the
        # next query plans against the new reality instead of paying the
        # refresh at plan time.
        if count and self.stats is not None and self._stats_stale():
            self.analyze()
        return count

    def truncate(self) -> None:
        self.rows.clear()
        self.stats = None
        # rebuild (now empty) indexes rather than leaving stale row ids
        for name, index in list(self.indexes.items()):
            self.indexes[name] = TableIndex(name, self, index.column)

    # ------------------------------------------------------------------
    # ANALYZE statistics
    # ------------------------------------------------------------------
    def analyze(self) -> "TableStats":
        """Collect and cache fresh statistics for this table."""
        from repro.stats.collect import analyze_table

        self.stats = analyze_table(self)
        return self.stats

    def _stats_stale(self) -> bool:
        if self.stats is None:
            return True
        drift = abs(len(self.rows) - self.stats.row_count)
        threshold = max(
            _STALENESS_MIN_ROWS, int(self.stats.row_count * _STALENESS_FRACTION)
        )
        return drift > threshold

    def active_stats(self) -> "Optional[TableStats]":
        """Current statistics, refreshed transparently when stale.

        This is the planner's entry point: estimates always see
        statistics no more than ~20% out of date.  Empty tables report
        an (accurate) empty snapshot rather than None.
        """
        if self.stats is None or self._stats_stale():
            self.analyze()
        return self.stats

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"
