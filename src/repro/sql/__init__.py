"""SQL front end: lexer, parser, AST, planner.

Note: the planner is intentionally not re-exported here — importing it at
package level would create a cycle (planner -> executor -> ast_nodes ->
this package).  Import it as ``from repro.sql.planner import Planner``.
"""

from repro.sql.parser import parse, parse_one

__all__ = ["parse", "parse_one"]
