"""Parser robustness: malformed input must fail with SQLError, never with
an uncontrolled exception, and valid statements must round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SQLError
from repro.sql.parser import parse


class TestMalformedInputs:
    @pytest.mark.parametrize("sql", [
        "SELECT",
        "SELECT FROM t",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a b c FROM t",
        "INSERT INTO",
        "INSERT INTO t VALUES",
        "INSERT INTO t VALUES (1",
        "CREATE TABLE t",
        "CREATE TABLE t ()",
        "SELECT * FROM t GROUP BY",
        "SELECT * FROM t GROUP BY x DISTANCE-TO-ALL",
        "SELECT * FROM t GROUP BY x DISTANCE-TO-ALL WITHIN",
        "SELECT * FROM (SELECT 1)",          # missing alias
        "SELECT a FROM t ORDER BY",
        "SELECT a FROM t LIMIT many",
        "SELECT CASE WHEN 1 THEN 2",          # missing END
        "SELECT 1 UNION",
        "SELECT 1 WHERE x IN ()",
        "SELECT 1 WHERE x BETWEEN 1",
        "DROP INDEX i",                       # missing ON table
        ";;;SELECT",
        "(((((",
        "'unterminated",
    ])
    def test_raises_sql_error(self, sql):
        with pytest.raises(SQLError):
            parse(sql)

    def test_empty_input_gives_no_statements(self):
        assert parse("") == []
        assert parse("   ;;  ; ") == []


class TestFuzz:
    _tokens = st.sampled_from([
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "DISTANCE", "-", "TO",
        "ALL", "ANY", "WITHIN", "ON", "OVERLAP", "JOIN", "LEFT", "UNION",
        "CASE", "WHEN", "THEN", "END", "(", ")", ",", "*", "+", "=", "<",
        "1", "2.5", "'str'", "ident", "t", "a", "b", "count", "NULL",
        "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "AS", ";",
    ])

    @settings(max_examples=300, deadline=None)
    @given(parts=st.lists(_tokens, max_size=25))
    def test_random_token_soup_never_crashes(self, parts):
        """Any input either parses or raises an SQLError — nothing else."""
        text = " ".join(parts)
        try:
            parse(text)
        except SQLError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(text=st.text(max_size=60))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse(text)
        except SQLError:
            pass


class TestRoundTrips:
    """Statements the test suite relies on must parse to the same shapes
    regardless of whitespace/case mangling."""

    @pytest.mark.parametrize("sql", [
        "select COUNT(*) from T group by X, y distance-to-all LINF "
        "within 3 on-overlap eliminate",
        "SELECT\n\tcount(*)\nFROM t\nGROUP BY x, y\n"
        "DISTANCE-TO-ANY L2 WITHIN 0.5",
        "select a from t where a in (select b from u) order by 1 limit 5",
    ])
    def test_whitespace_and_case_insensitive(self, sql):
        stmts_a = parse(sql)
        stmts_b = parse(sql.upper().replace("\n", "  "))
        assert len(stmts_a) == len(stmts_b) == 1
        assert type(stmts_a[0]) is type(stmts_b[0])
