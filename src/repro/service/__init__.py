"""repro.service — the asynchronous SGB query service.

The paper positions similarity GROUP BY as an operator *served by* a
DBMS; this package is the serving layer in front of
:class:`repro.Database`:

* :class:`~repro.service.server.SGBService` — an asyncio TCP server
  speaking a JSON-lines wire protocol (``query`` / ``execute`` /
  ``explain`` / ``cancel`` / ``ping`` / ``metrics`` / ``stream``) with a
  per-connection session layer and a connection cap;
* :class:`~repro.service.scheduler.QueryScheduler` — a bounded worker
  pool that runs engine calls off the event loop, with a FIFO admission
  queue that sheds load as typed
  :class:`~repro.errors.ServiceOverloadedError` responses;
* per-query deadlines and client cancellation via
  :class:`~repro.core.cancel.CancelToken`, checked cooperatively at
  operator-iteration boundaries inside the engine;
* an HTTP ``GET /metrics`` endpoint unifying the engine's Prometheus
  snapshot with service-level counters, gauges, and latency histograms;
* :class:`~repro.service.client.ServiceClient` — the synchronous client
  used by the tests, ``benchmarks/bench_service.py``, and the shell's
  ``\\connect``.

Run a server with ``python -m repro.service``; see ``docs/service.md``
for the wire protocol and the knob/metric catalogs.
"""

from repro.core.cancel import CancelToken
from repro.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.scheduler import QueryScheduler
from repro.service.server import ServerThread, SGBService

__all__ = [
    "SGBService",
    "ServerThread",
    "ServiceClient",
    "ServiceConfig",
    "QueryScheduler",
    "CancelToken",
    "ServiceError",
    "ServiceOverloadedError",
    "QueryTimeoutError",
    "QueryCancelledError",
]
