"""TPC-H analytics with similarity grouping — the paper's Table 2 workload.

Loads the TPC-H-like generator into the engine and runs each business
question with its standard-GROUP-BY and similarity variants side by side.

    python examples/tpch_analytics.py [scale_factor]
"""

import sys

from repro.workloads import queries as Q
from repro.workloads.tpch import load_tpch


def show(title: str, result, limit: int = 4) -> None:
    print(f"{title}: {len(result)} row(s)")
    print(f"  columns: {result.columns}")
    for row in result.rows[:limit]:
        rendered = [
            f"[{len(v)} ids]" if isinstance(v, list) else v for v in row
        ]
        print(f"  {tuple(rendered)}")
    if len(result) > limit:
        print(f"  ... {len(result) - limit} more")
    print()


def main() -> None:
    sf = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    db = load_tpch(scale_factor=sf, tiebreak="first")
    counts = {t.name: len(t) for t in db.catalog}
    print(f"TPC-H-like data at SF={sf}: {counts}\n")

    show("GB1 — large-volume customers (Q18)",
         db.execute(Q.gb1(quantity_threshold=60)))
    show("SGB1 — customers with similar buying power (SGB-All)",
         db.execute(Q.sgb1(eps=50000)))
    show("SGB2 — same, connectivity semantics (SGB-Any)",
         db.execute(Q.sgb2(eps=50000)))

    show("GB2 — profit by nation and year (Q9)", db.execute(Q.gb2()))
    show("SGB3 — parts with similar profit & shipment time (SGB-All)",
         db.execute(Q.sgb3(eps=5000, on_overlap="eliminate")))

    show("GB3 — top supplier by revenue (Q15)", db.execute(Q.gb3()))
    show("SGB5 — suppliers with similar revenue & balance (SGB-All)",
         db.execute(Q.sgb5(eps=2000, on_overlap="form-new-group")))

    print("physical plan of SGB1:")
    print(db.explain(Q.sgb1(eps=50000)))


if __name__ == "__main__":
    main()
