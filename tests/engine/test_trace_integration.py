"""End-to-end tracing: Database wiring, parallel parity, export, shell.

The load-bearing property is *serial-vs-parallel trace parity*: the same
PARTITION BY query must produce the same span tree (names, nesting, and
phase attributes) whether partitions run in-process or on a worker pool —
workers differ only in the pid stamped on their spans and the extra
``parallel_dispatch`` node that models the fan-out itself.
"""

import json

import pytest

from repro.engine.database import Database
from repro.engine.shell import Shell
from repro.errors import PlanningError
from repro.obs.export import parse_prometheus_text
from repro.obs.metrics import SGB_COUNTER_FIELDS
from repro.obs.trace import validate_chrome_trace

PARTITIONED_SQL = (
    "SELECT part, count(*) FROM pts GROUP BY x, y "
    "DISTANCE-TO-ANY L2 WITHIN 1 PARTITION BY part"
)


def make_db(parallel: int, trace: bool = True, n: int = 120) -> Database:
    db = Database(parallel=parallel, trace=trace)
    db.execute("CREATE TABLE pts (part int, x float, y float)")
    rows = []
    for i in range(n):
        cluster = i % 3
        rows.append((i % 4, cluster * 10.0 + (i % 7) * 0.05,
                     cluster * 10.0 + (i % 5) * 0.05))
    db.insert("pts", rows)
    return db


def span_tree(tracer, prune=("parallel_dispatch",)):
    """Canonical nested shape of a trace, pid-free and order-normalized.

    ``prune`` names are spliced out (their children re-hang on the
    grandparent) — the dispatch node exists only on the parallel path and
    is exactly the difference parity allows.
    """
    records = tracer.records()
    by_id = {r.span_id: r for r in records}

    def effective_parent(r):
        parent = by_id.get(r.parent_id)
        while parent is not None and parent.name in prune:
            parent = by_id.get(parent.parent_id)
        return parent.span_id if parent is not None else ""

    children = {}
    for r in records:
        if r.name in prune:
            continue
        children.setdefault(effective_parent(r), []).append(r)

    def shape(r):
        attrs = {k: v for k, v in r.attrs.items() if k != "pid"}
        kids = sorted(
            (shape(c) for c in children.get(r.span_id, [])),
            key=lambda s: (s[0], sorted(s[1].items())),
        )
        return (r.name, attrs, tuple(kids))

    roots = sorted(
        (shape(r) for r in children.get("", [])),
        key=lambda s: s[0],
    )
    return tuple(roots)


class TestSerialParallelParity:
    def test_span_trees_identical_modulo_dispatch(self):
        serial = make_db(parallel=1)
        parallel = make_db(parallel=2)
        rows_serial = serial.query(PARTITIONED_SQL).rows
        rows_parallel = parallel.query(PARTITIONED_SQL).rows
        assert rows_serial == rows_parallel
        assert span_tree(serial.tracer) == span_tree(parallel.tracer)

    def test_parallel_spans_cross_process_boundary(self):
        db = make_db(parallel=2)
        db.query(PARTITIONED_SQL)
        main_pid = db.tracer.pid
        partition_pids = {r.pid for r in db.tracer.records()
                          if r.name == "partition"}
        assert partition_pids and main_pid not in partition_pids

    def test_worker_spans_parent_onto_dispatch_span(self):
        db = make_db(parallel=2)
        db.query(PARTITIONED_SQL)
        by_id = {r.span_id: r for r in db.tracer.records()}
        partitions = [r for r in by_id.values() if r.name == "partition"]
        assert len(partitions) == 4
        for part in partitions:
            parent = by_id[part.parent_id]
            assert parent.name == "parallel_dispatch"
            # and the whole chain resolves up to the query root
            while parent.parent_id:
                parent = by_id[parent.parent_id]
            assert parent.name == "query"

    def test_chrome_export_validates_with_worker_tracks(self):
        db = make_db(parallel=2)
        db.query(PARTITIONED_SQL)
        payload = db.tracer.to_chrome_trace()
        assert validate_chrome_trace(payload) == []
        pids = {e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert len(pids) >= 2


class TestDatabaseTracing:
    def test_off_by_default(self):
        db = Database()
        assert db.tracer is None
        assert not db.trace_enabled
        with pytest.raises(PlanningError):
            db.export_trace("/tmp/never-written.json")

    def test_query_span_hierarchy_and_phases(self):
        db = make_db(parallel=1)
        db.query(PARTITIONED_SQL)
        names = [r.name for r in db.tracer.records()]
        assert names.count("query") == 1
        assert names.count("partition") == 4
        assert names.count("ingest") == 4
        assert names.count("finalize") == 4
        assert "spool" in names

    def test_set_trace_toggles_but_keeps_buffer(self):
        db = make_db(parallel=1)
        db.query(PARTITIONED_SQL)
        buffered = len(db.tracer)
        db.set_trace(False)
        db.query(PARTITIONED_SQL)  # untraced: buffer unchanged
        assert len(db.tracer) == buffered
        db.set_trace(True)
        db.query(PARTITIONED_SQL)
        assert len(db.tracer) > buffered

    def test_traced_results_match_untraced(self):
        traced = make_db(parallel=1, trace=True)
        plain = make_db(parallel=1, trace=False)
        assert traced.query(PARTITIONED_SQL).rows == \
            plain.query(PARTITIONED_SQL).rows

    def test_export_trace_formats(self, tmp_path):
        db = make_db(parallel=1)
        db.query(PARTITIONED_SQL)
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        db.export_trace(str(chrome))
        n = db.export_trace(str(jsonl))
        payload = json.loads(chrome.read_text())
        assert validate_chrome_trace(payload) == []
        assert len(jsonl.read_text().splitlines()) == n == len(db.tracer)


class TestMetricsSnapshot:
    def test_fresh_database_snapshot_is_complete_and_parseable(self):
        parsed = parse_prometheus_text(Database().metrics_snapshot())
        names = {name for name, _ in parsed}
        for counter in SGB_COUNTER_FIELDS:
            assert f"repro_sgb_{counter}_total" in names
        assert any(name.endswith("_bucket") for name in names)

    def test_traced_query_populates_counters_and_histograms(self):
        db = make_db(parallel=2)
        db.query(PARTITIONED_SQL)
        parsed = parse_prometheus_text(db.metrics_snapshot())
        batch = (("source", "batch"),)
        assert parsed[("repro_sgb_points_total", batch)] == 120
        assert parsed[("repro_sgb_index_probes_total", batch)] > 0
        assert parsed[("repro_probe_latency_seconds_count", batch)] == 120
        assert parsed[("repro_queries_total", ())] == 1

    def test_parallel_and_serial_snapshots_agree_on_counters(self):
        # Worker-side bags fold back into the parent, so the exported
        # totals must not depend on where partitions ran.
        dbs = [make_db(parallel=1), make_db(parallel=2)]
        snapshots = []
        for db in dbs:
            db.query(PARTITIONED_SQL)
            parsed = parse_prometheus_text(db.metrics_snapshot())
            snapshots.append({
                key: value for key, value in parsed.items()
                if "_total" in key[0] and "trace_spans" not in key[0]
            })
        assert snapshots[0] == snapshots[1]

    def test_analyze_folds_into_cumulative_metrics(self):
        db = make_db(parallel=1, trace=False)
        db.analyze(PARTITIONED_SQL)
        parsed = parse_prometheus_text(db.metrics_snapshot())
        assert parsed[("repro_sgb_points_total", (("source", "batch"),))] == 120


class TestStreamingSpans:
    def test_micro_batch_spans_and_histogram(self):
        db = make_db(parallel=1)
        db.create_stream_view("sv", "pts", ["x", "y"], "any", eps=1.0,
                              batch_size=32)
        spans = [r for r in db.tracer.records() if r.name == "micro_batch"]
        assert len(spans) == 120 // 32  # back-fill flushes
        assert all(sp.attrs["size"] == 32 for sp in spans)
        assert all(sp.attrs["points"] == 32 for sp in spans)
        parsed = parse_prometheus_text(db.metrics_snapshot())
        batch = (("source", "batch"),)
        assert parsed[("repro_micro_batch_latency_seconds_count", batch)] \
            == len(spans)
        stream = (("source", "stream:sv"),)
        assert parsed[("repro_sgb_points_total", stream)] == 96

    def test_set_trace_reaches_existing_views(self):
        db = make_db(parallel=1, trace=False)
        view = db.create_stream_view("sv", "pts", ["x", "y"], "any",
                                     eps=1.0, batch_size=16)
        assert view.batcher.tracer is None
        db.set_trace(True)
        assert view.batcher.tracer is db.tracer
        db.insert("pts", [(0, 50.0, 50.0)] * 16)
        assert any(r.name == "micro_batch" for r in db.tracer.records())


class TestShellTrace:
    def test_trace_on_dump_off_cycle(self, tmp_path):
        sh = Shell(make_db(parallel=1, trace=False))
        assert "off" in sh.feed("\\trace")
        assert sh.feed("\\trace on") == "Tracing is on."
        sh.feed(PARTITIONED_SQL + ";")
        path = tmp_path / "shell-trace.json"
        out = sh.feed(f"\\trace dump {path}")
        assert "Wrote" in out
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        assert sh.feed("\\trace off") == "Tracing is off."
        assert "off" in sh.feed("\\trace")

    def test_trace_usage_and_dump_errors(self):
        sh = Shell()
        assert "usage" in sh.feed("\\trace bogus")
        assert "usage" in sh.feed("\\trace dump")
        assert sh.feed("\\trace dump /nope/nope.json").startswith("ERROR:")

    def test_metrics_command_emits_prometheus_text(self):
        sh = Shell(make_db(parallel=1))
        sh.feed(PARTITIONED_SQL + ";")
        parsed = parse_prometheus_text(sh.feed("\\metrics"))
        assert parsed[("repro_sgb_points_total", (("source", "batch"),))] > 0

    def test_help_mentions_trace(self):
        sh = Shell()
        assert "\\trace" in sh.feed("\\help")
