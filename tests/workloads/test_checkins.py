"""Synthetic check-in dataset tests."""

import statistics

import pytest

from repro.engine.database import Database
from repro.errors import InvalidParameterError
from repro.workloads.checkins import (
    LAT_RANGE,
    LON_RANGE,
    CheckinDataset,
    brightkite,
    gowalla,
)


class TestCheckinDataset:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CheckinDataset(0)
        with pytest.raises(InvalidParameterError):
            CheckinDataset(10, noise_frac=1.5)

    def test_exact_size(self):
        data = CheckinDataset(500, seed=1)
        assert len(data) == 500
        assert len(data.points()) == 500

    def test_deterministic(self):
        assert CheckinDataset(200, seed=3).rows == (
            CheckinDataset(200, seed=3).rows
        )
        assert CheckinDataset(200, seed=3).rows != (
            CheckinDataset(200, seed=4).rows
        )

    def test_rows_shape(self):
        for user_id, lat, lon in CheckinDataset(100, seed=2).rows:
            assert isinstance(user_id, int)
            assert isinstance(lat, float) and isinstance(lon, float)

    def test_user_counts_long_tailed(self):
        data = CheckinDataset(2000, n_users=100, seed=5)
        counts = {}
        for uid, _, _ in data.rows:
            counts[uid] = counts.get(uid, 0) + 1
        values = sorted(counts.values(), reverse=True)
        # the head user checks in far more than the median user
        assert values[0] >= 5 * statistics.median(values)

    def test_spatial_clustering_present(self):
        """Check-ins must be far more concentrated than uniform noise:
        the std of coordinates within the densest cell is much smaller
        than the global spread."""
        data = CheckinDataset(2000, n_cities=10, city_std=0.5,
                              noise_frac=0.0, seed=6)
        pts = data.points()
        # bucket by 5-degree cells, find the densest
        cells = {}
        for lat, lon in pts:
            cells.setdefault((lat // 5, lon // 5), []).append((lat, lon))
        densest = max(cells.values(), key=len)
        assert len(densest) > len(pts) / 50  # real concentration
        lat_spread = statistics.pstdev(p[0] for p in pts)
        dens_spread = statistics.pstdev(p[0] for p in densest)
        assert dens_spread < lat_spread / 3

    def test_populate(self):
        db = Database()
        CheckinDataset(50, seed=7).populate(db)
        assert db.query("SELECT count(*) FROM checkins").scalar() == 50
        res = db.query(
            "SELECT count(*) FROM checkins GROUP BY latitude, longitude "
            "DISTANCE-TO-ANY L2 WITHIN 1.0"
        )
        assert sum(r[0] for r in res) == 50


class TestPresets:
    def test_presets_differ(self):
        b = brightkite(300)
        g = gowalla(300)
        assert b.name == "brightkite" and g.name == "gowalla"
        assert b.points() != g.points()

    def test_bounding_box(self):
        for maker in (brightkite, gowalla):
            data = maker(400)
            for lat, lon in data.points():
                # Gaussian tails may exceed the box slightly; allow slack
                assert LAT_RANGE[0] - 10 <= lat <= LAT_RANGE[1] + 10
                assert LON_RANGE[0] - 10 <= lon <= LON_RANGE[1] + 10
