# sgblint: module=repro.engine.executor.fixture_cancel_good
"""SGB009 true negatives: checkpointed, yielding, and shape-bounded
loops."""


class CancelToken:
    def check(self):
        return None


class PhysicalOperator:
    CHECKPOINT_EVERY = 1024

    _cancel: CancelToken

    def __init__(self, child=None):
        self._cancel = None
        self.child = child

    def _checkpoint(self, i):
        if self._cancel is not None and i % self.CHECKPOINT_EVERY == 0:
            self._cancel.check()


class CheckpointedAggregate(PhysicalOperator):
    def __init__(self, child, specs):
        super().__init__(child)
        self._specs = specs

    def _execute(self):
        spool = []
        for row in self.child:  # exempt: the child iterator checks
            spool.append(row)
        acc = 0
        for i, row in enumerate(spool):
            if i % 256 == 0:
                self._cancel.check()  # direct cancel check
            acc = acc + row
        total = 0
        for j, row in enumerate(spool):
            self._checkpoint(j)  # indirect: reaches CancelToken.check
            total = total + self._fold(row)
        specs = self._specs
        for spec in specs:  # shape-bounded: one iteration per aggregate
            total = total + self._fold(spec)
        yield total + acc

    def _fold(self, value):
        return value * 2


class StreamingProject(PhysicalOperator):
    def _execute(self):
        for row in self.child:  # yields per row: __iter__ checks
            yield row + 1
