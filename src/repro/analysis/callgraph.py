"""Call graph over the project symbol table.

Each analyzed function gets a list of :class:`CallSite` records whose
``callee`` is either a resolved qualified name (``repro.engine.database.
Database.execute``, ``time.sleep``) or an *unresolved marker* of the
form ``?<attr>`` (``?put`` for ``something.put(...)`` whose receiver
type is unknown).  Rules decide per-rule how to treat markers — SGB008
matches ``?get``/``?put`` against known-blocking method names only when
the receiver's inferred type says so, while SGB009 treats unresolved
calls as opaque (no cancel check reachable through them).

Resolution strategies, in order, for ``expr.method(...)``:

1. ``name(...)`` — module scope: local function, class (constructor),
   or import.
2. ``self.method(...)`` — dispatch on the enclosing class's MRO.
3. ``self.attr.method(...)`` — the class's inferred ``attr_types``.
4. ``var.method(...)`` — local variable types from ``var = Ctor(...)``
   assignments and parameter annotations within the function body.
5. ``module.func(...)`` / ``Class.method(...)`` — the import table.

Anything else yields the ``?<attr>`` marker.  Callables that are only
*passed* (``asyncio.to_thread(fn)``, ``pool.submit(fn)``) create no
edge — an executor hop really does break the synchronous chain, which
is exactly the semantics SGB008 needs.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.astutil import dotted_name
from repro.analysis.symbols import ClassSymbol, FunctionSymbol, SymbolTable


class CallSite:
    """One call expression inside an analyzed function."""

    __slots__ = ("caller", "callee", "node", "path", "lineno")

    def __init__(self, caller: str, callee: str, node: ast.Call,
                 path: str):
        self.caller = caller
        #: Resolved qualified name, or ``?<attr>`` when the receiver is
        #: unknown, or ``?`` for calls with no extractable name.
        self.callee = callee
        self.node = node
        self.path = path
        self.lineno = node.lineno

    @property
    def resolved(self) -> bool:
        return not self.callee.startswith("?")

    def __repr__(self) -> str:
        return f"<CallSite {self.caller} -> {self.callee} @{self.lineno}>"


class CallGraph:
    """caller qualname -> outgoing call sites, with reachability helpers."""

    def __init__(self, table: SymbolTable):
        self.table = table
        self.calls: Dict[str, List[CallSite]] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for sym in list(table.functions.values()):
            if sym.nested:
                continue  # folded into the enclosing function below
            graph.calls[sym.qualname] = graph._collect_calls(sym)
        return graph

    def _collect_calls(self, sym: FunctionSymbol) -> List[CallSite]:
        local_types = self._local_var_types(sym)
        cls_sym = self._enclosing_class(sym)
        sites: List[CallSite] = []
        for node in ast.walk(sym.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call(sym, cls_sym, local_types, node)
            sites.append(CallSite(sym.qualname, callee, node, sym.path))
        return sites

    def _enclosing_class(self, sym: FunctionSymbol) -> Optional[ClassSymbol]:
        if sym.cls is None:
            return None
        return self.table.classes.get(f"{sym.module}.{sym.cls}")

    def _local_var_types(self, sym: FunctionSymbol) -> Dict[str, str]:
        """``var = Ctor(...)`` and annotated params -> var: dotted ctor
        name as written in the module (resolved through imports later)."""
        types: Dict[str, str] = dict(sym.param_types)
        for node in ast.walk(sym.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            elif isinstance(node, ast.withitem) and \
                    node.optional_vars is not None:
                target, value = node.optional_vars, node.context_expr
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call):
                ctor = dotted_name(value.func)
                if ctor:
                    types[target.id] = ctor
                else:
                    types.pop(target.id, None)
            elif value is not None:
                types.pop(target.id, None)  # rebound to something opaque
        return types

    def _resolve_call(self, sym: FunctionSymbol,
                      cls_sym: Optional[ClassSymbol],
                      local_types: Dict[str, str],
                      node: ast.Call) -> str:
        func = node.func
        # -- bare name: local def, class ctor, or import -------------------
        if isinstance(func, ast.Name):
            resolved = self.table.resolve(sym.module, func.id)
            if resolved is not None:
                return self._ctor_to_init(resolved)
            # Nested function defined in this same body?
            nested = f"{sym.qualname}.<locals>.{func.id}"
            if nested in self.table.functions:
                return nested
            return f"?{func.id}"
        if not isinstance(func, ast.Attribute):
            return "?"
        attr = func.attr
        recv = func.value
        # -- self.method(...) ----------------------------------------------
        if isinstance(recv, ast.Name) and recv.id == "self":
            if cls_sym is not None:
                method = self.table.resolve_method(cls_sym, attr)
                if method is not None:
                    return method.qualname
            return f"?{attr}"
        # -- self.attr.method(...) -----------------------------------------
        if (isinstance(recv, ast.Attribute)
                and isinstance(recv.value, ast.Name)
                and recv.value.id == "self" and cls_sym is not None):
            attr_type = self._attr_type(cls_sym, recv.attr)
            if attr_type is not None:
                return self._dispatch_on_type(sym.module, attr_type, attr)
            return f"?{attr}"
        # -- var.method(...) -----------------------------------------------
        if isinstance(recv, ast.Name) and recv.id in local_types:
            return self._dispatch_on_type(
                sym.module, local_types[recv.id], attr)
        # -- module.func(...) / Class.method(...) / a.b.c(...) -------------
        dotted = dotted_name(func)
        if dotted is not None:
            resolved = self.table.resolve(sym.module, dotted)
            if resolved is not None:
                return self._ctor_to_init(resolved)
            return f"?{attr}"
        return f"?{attr}"

    def _attr_type(self, cls_sym: ClassSymbol,
                   attr: str) -> Optional[str]:
        for klass in self.table.mro(cls_sym):
            if attr in klass.attr_types:
                return klass.attr_types[attr]
        return None

    def _dispatch_on_type(self, module: str, type_name: str,
                          method: str) -> str:
        """Resolve ``<type>.<method>`` where ``type_name`` is spelled as
        in ``module`` (``Tracer``, ``queue.Queue``, ``threading.RLock``)."""
        target_cls = self.table.resolve_class(module, type_name)
        if target_cls is not None:
            resolved = self.table.resolve_method(target_cls, method)
            if resolved is not None:
                return resolved.qualname
            return f"{target_cls.qualname}.{method}"
        # Unanalyzed type (stdlib): resolve the type name textually so
        # ``q.get`` on a ``queue.Queue`` becomes ``queue.Queue.get``.
        textual = self.table.resolve(module, type_name)
        if textual is not None:
            return f"{textual}.{method}"
        return f"{type_name}.{method}"

    def _ctor_to_init(self, qualname: str) -> str:
        """Calling a known class means calling its ``__init__`` for
        reachability purposes; unknown names pass through unchanged."""
        cls_sym = self.table.classes.get(qualname)
        if cls_sym is not None:
            init = self.table.resolve_method(cls_sym, "__init__")
            if init is not None:
                return init.qualname
        return qualname

    # -- queries -----------------------------------------------------------
    def sites(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def callees(self, qualname: str) -> Set[str]:
        return {site.callee for site in self.sites(qualname)}

    def reachable_path(
        self, start: str,
        target: Callable[[str, CallSite], bool],
        max_depth: int = 12,
    ) -> Optional[List[CallSite]]:
        """BFS from ``start``; return the chain of call sites leading to
        the first callee for which ``target(callee, site)`` is true, or
        ``None``.  Only resolved edges into *analyzed* functions are
        expanded; ``target`` also sees leaf (unanalyzed) callees, so a
        predicate can match ``time.sleep`` without a function body.
        """
        seen: Set[str] = {start}
        queue: List[Tuple[str, List[CallSite]]] = [(start, [])]
        while queue:
            current, chain = queue.pop(0)
            if len(chain) >= max_depth:
                continue
            for site in self.sites(current):
                if target(site.callee, site):
                    return chain + [site]
                if site.callee in seen or not site.resolved:
                    continue
                seen.add(site.callee)
                if site.callee in self.calls:
                    queue.append((site.callee, chain + [site]))
        return None

    # -- debug dump --------------------------------------------------------
    def as_dict(self) -> Dict[str, List[Dict[str, object]]]:
        out: Dict[str, List[Dict[str, object]]] = {}
        for caller in sorted(self.calls):
            out[caller] = [
                {"callee": s.callee, "line": s.lineno}
                for s in self.calls[caller]
            ]
        return out


def format_chain(chain: Iterable[CallSite]) -> str:
    """``a -> b -> c`` rendering of a reachability chain for messages."""
    parts: List[str] = []
    for site in chain:
        if not parts:
            parts.append(site.caller.rsplit(".", 1)[-1])
        parts.append(site.callee.lstrip("?"))
    return " -> ".join(parts)
