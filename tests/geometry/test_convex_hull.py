"""Convex hull tests, including a scipy oracle for random point sets."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convex_hull import (
    IncrementalHull,
    convex_hull,
    diameter,
    farthest_vertex,
    point_in_convex_polygon,
)

coord = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
point2 = st.tuples(coord, coord)


class TestMonotoneChain:
    def test_triangle(self):
        hull = convex_hull([(0, 0), (4, 0), (2, 3)])
        assert set(hull) == {(0, 0), (4, 0), (2, 3)}

    def test_interior_points_dropped(self):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4), (2, 2), (1, 1), (3, 2)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (4, 0), (4, 4), (0, 4)}

    def test_collinear_returns_extremes(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert set(hull) == {(0, 0), (3, 3)}

    def test_duplicates_collapse(self):
        assert convex_hull([(1, 1), (1, 1), (1, 1)]) == [(1.0, 1.0)]

    def test_empty_and_singleton(self):
        assert convex_hull([]) == []
        assert convex_hull([(2, 3)]) == [(2.0, 3.0)]

    def test_two_points(self):
        assert convex_hull([(0, 0), (1, 2)]) == [(0.0, 0.0), (1.0, 2.0)]

    def test_ccw_orientation(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        # signed area positive => CCW
        area = sum(
            hull[i][0] * hull[(i + 1) % len(hull)][1]
            - hull[(i + 1) % len(hull)][0] * hull[i][1]
            for i in range(len(hull))
        )
        assert area > 0

    # Integer grid: Qhull's merged-facet tolerance and our exact arithmetic
    # agree there; denormal-coordinate inputs are covered by the exact tests.
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
                    min_size=3, max_size=40, unique=True))
    def test_matches_scipy(self, pts):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        try:
            sp = scipy_spatial.ConvexHull(pts)
        except Exception:  # degenerate (collinear) input for Qhull
            return
        ours = {(round(x, 9), round(y, 9)) for x, y in convex_hull(pts)}
        theirs = {
            (round(pts[i][0], 9), round(pts[i][1], 9)) for i in sp.vertices
        }
        assert ours == theirs

    @given(st.lists(point2, min_size=1, max_size=30))
    def test_all_points_inside_hull(self, pts):
        hull = convex_hull(pts)
        for p in pts:
            assert point_in_convex_polygon(p, hull)


class TestPointInPolygon:
    def test_inside_square(self):
        square = [(0, 0), (4, 0), (4, 4), (0, 4)]
        assert point_in_convex_polygon((2, 2), square)
        assert point_in_convex_polygon((0, 0), square)  # vertex
        assert point_in_convex_polygon((2, 0), square)  # edge
        assert not point_in_convex_polygon((5, 2), square)
        assert not point_in_convex_polygon((-0.001, 2), square)

    def test_degenerate_segment(self):
        seg = [(0.0, 0.0), (2.0, 2.0)]
        assert point_in_convex_polygon((1, 1), seg)
        assert not point_in_convex_polygon((1, 1.5), seg)
        assert not point_in_convex_polygon((3, 3), seg)

    def test_degenerate_point(self):
        assert point_in_convex_polygon((1, 1), [(1.0, 1.0)])
        assert not point_in_convex_polygon((1, 2), [(1.0, 1.0)])


class TestFarthestVertex:
    def test_simple(self):
        hull = [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]
        v, d = farthest_vertex((-1, 0), hull)
        assert v == (4.0, 4.0)
        assert d == pytest.approx(math.sqrt(25 + 16))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            farthest_vertex((0, 0), [])

    @given(st.lists(point2, min_size=1, max_size=25), point2)
    def test_is_maximal_over_full_set(self, pts, probe):
        """The farthest point of a set from any external probe is always on
        the hull — the property the §6.4 refinement relies on."""
        hull = convex_hull(pts)
        _, d_hull = farthest_vertex(probe, hull)
        d_all = max(math.dist(probe, p) for p in pts)
        assert d_hull == pytest.approx(d_all)


class TestDiameter:
    def test_known(self):
        assert diameter([(0, 0), (3, 4), (1, 1)]) == pytest.approx(5.0)

    def test_degenerate(self):
        assert diameter([(1, 1)]) == 0.0
        assert diameter([(1, 1), (1, 1)]) == 0.0


class TestIncrementalHull:
    def test_incremental_matches_batch(self):
        pts = [(0, 0), (4, 0), (2, 3), (1, 1), (5, 5), (-1, 2), (2, -2)]
        inc = IncrementalHull()
        for p in pts:
            inc.add(p)
        assert sorted(inc.vertices) == sorted(convex_hull(pts))

    def test_interior_add_is_noop(self):
        inc = IncrementalHull([(0, 0), (4, 0), (4, 4), (0, 4)])
        before = inc.vertices
        inc.add((2, 2))
        assert inc.vertices == before

    def test_rebuild_after_removal(self):
        inc = IncrementalHull([(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)])
        inc.rebuild([(0, 0), (1, 0), (0, 1)])
        assert set(inc.vertices) == {(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)}

    # Integer coordinates keep the cross products exact, so the tolerance
    # in point-in-polygon can never disagree with the exact monotone chain.
    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
                    min_size=1, max_size=30))
    def test_incremental_equals_batch_property(self, pts):
        inc = IncrementalHull()
        for p in pts:
            inc.add(p)
        assert sorted(inc.vertices) == sorted(convex_hull(pts))
