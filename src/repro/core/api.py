"""High-level array API for the SGB operators.

These are the entry points a data-scientist user calls directly on point
collections; the SQL engine's SGB executor node is built on the same
operator classes.

>>> from repro import sgb_any
>>> res = sgb_any([(1, 1), (1.5, 1.2), (9, 9)], eps=1.0)
>>> res.n_groups
2
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.distance import Metric
from repro.core.result import GroupingResult
from repro.core.sgb_all import SGBAllOperator
from repro.core.sgb_any import SGBAnyOperator


def sgb_all(
    points: Iterable[Sequence[float]],
    eps: float,
    metric: Union[str, Metric] = "l2",
    on_overlap: str = "join-any",
    strategy: str = "index",
    tiebreak: str = "random",
    seed: int = 0,
    use_hull: bool = True,
    rtree_max_entries: int = 8,
    max_recursion: Optional[int] = None,
) -> GroupingResult:
    """Group ``points`` under the distance-to-all (clique) semantics.

    Parameters mirror :class:`~repro.core.sgb_all.SGBAllOperator`; see the
    paper's Section 6 for the algorithmics.  The result assigns every input
    point a group label (or ``-1`` when dropped by ``on_overlap="eliminate"``).
    """
    op = SGBAllOperator(
        eps=eps,
        metric=metric,
        on_overlap=on_overlap,
        strategy=strategy,
        tiebreak=tiebreak,
        seed=seed,
        use_hull=use_hull,
        rtree_max_entries=rtree_max_entries,
        max_recursion=max_recursion,
    )
    return op.add_many(points).finalize()


def sgb_any(
    points: Iterable[Sequence[float]],
    eps: float,
    metric: Union[str, Metric] = "l2",
    strategy: str = "index",
    rtree_max_entries: int = 16,
) -> GroupingResult:
    """Group ``points`` under the distance-to-any (connectivity) semantics.

    Output groups are the connected components of the ε-neighbourhood graph
    (paper Section 7); the result is independent of input order.
    """
    op = SGBAnyOperator(
        eps=eps,
        metric=metric,
        strategy=strategy,
        rtree_max_entries=rtree_max_entries,
    )
    return op.add_many(points).finalize()
