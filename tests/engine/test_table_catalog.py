"""Table and catalog tests."""

import datetime as dt

import pytest

from repro.engine.catalog import Catalog
from repro.engine.table import Table
from repro.errors import CatalogError, InvalidParameterError


class TestTable:
    def test_insert_coerces(self):
        t = Table("t", [("a", "int"), ("b", "date")])
        t.insert((1, "1995-06-01"))
        assert t.rows[0] == (1, dt.date(1995, 6, 1))

    def test_insert_wrong_arity(self):
        t = Table("t", [("a", "int")])
        with pytest.raises(InvalidParameterError, match="expects 1"):
            t.insert((1, 2))

    def test_insert_bad_type(self):
        t = Table("t", [("a", "int")])
        with pytest.raises(InvalidParameterError):
            t.insert(("oops",))

    def test_insert_many_counts(self):
        t = Table("t", [("a", "int")])
        assert t.insert_many([(1,), (2,), (3,)]) == 3
        assert len(t) == 3

    def test_null_allowed(self):
        t = Table("t", [("a", "int")])
        t.insert((None,))
        assert t.rows[0] == (None,)

    def test_duplicate_column_rejected(self):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            Table("t", [("a", "int"), ("A", "int")])

    def test_no_columns_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table("t", [])

    def test_truncate(self):
        t = Table("t", [("a", "int")])
        t.insert((1,))
        t.truncate()
        assert len(t) == 0

    def test_schema_qualified_with_table_name(self):
        t = Table("MyTable", [("a", "int")])
        assert t.schema.columns[0].qualifier == "mytable"


class TestCatalog:
    def test_create_get(self):
        c = Catalog()
        t = c.create_table("t", [("a", "int")])
        assert c.get("T") is t
        assert "t" in c

    def test_create_duplicate(self):
        c = Catalog()
        c.create_table("t", [("a", "int")])
        with pytest.raises(CatalogError, match="already exists"):
            c.create_table("t", [("a", "int")])
        # if_not_exists returns the existing table
        assert c.create_table("t", [("a", "int")], if_not_exists=True) is (
            c.get("t")
        )

    def test_drop(self):
        c = Catalog()
        c.create_table("t", [("a", "int")])
        c.drop_table("t")
        assert "t" not in c
        with pytest.raises(CatalogError):
            c.drop_table("t")
        c.drop_table("t", if_exists=True)  # no raise

    def test_get_unknown_lists_known(self):
        c = Catalog()
        c.create_table("known", [("a", "int")])
        with pytest.raises(CatalogError, match="known"):
            c.get("unknown")

    def test_table_names_sorted(self):
        c = Catalog()
        c.create_table("zeta", [("a", "int")])
        c.create_table("alpha", [("a", "int")])
        assert c.table_names() == ["alpha", "zeta"]
