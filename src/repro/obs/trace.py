"""Hierarchical execution tracing (query → plan node → phase → partition).

Where :mod:`repro.obs.metrics` answers "how much, in total" and
:mod:`repro.obs.hist` answers "how is it distributed", this module answers
"*when*, and inside *what*": a :class:`Tracer` produces a tree of timed
spans per query — the same shape of information PostgreSQL operators get
from ``EXPLAIN ANALYZE`` nesting, but preserved as an artifact that can be
inspected offline.

Design points:

* **Exact parenting.**  Every finished span is a :class:`SpanRecord` with
  a ``trace_id``, its own ``span_id``, and its parent's ``span_id`` (empty
  for roots).  Ids are strings minted from a per-tracer counter; worker
  processes derive theirs from the propagated parent id (see below), so
  ids are globally unique without cross-process coordination.
* **Ring-buffer sink.**  Finished spans land in a bounded deque; when the
  buffer is full the *oldest* spans are dropped (and counted in
  ``dropped``), so a long-lived traced Database has bounded memory.
* **Cross-process propagation.**  :meth:`Tracer.context` captures
  ``(trace_id, current span_id)``; a worker builds a tracer with
  :meth:`Tracer.for_context` (its root spans parent onto the propagated
  span id, its span ids are prefixed with a caller-chosen unique tag), and
  ships ``export_records()`` back for the parent to :meth:`ingest`.  Worker
  records carry the worker's OS pid, which the Chrome exporter surfaces as
  a separate process track.
* **Two export formats.**  JSONL (one record per line, for ad-hoc
  analysis) and the Chrome ``trace_event`` JSON loadable in Perfetto /
  ``chrome://tracing`` (``ph: "X"`` complete events plus ``process_name``
  metadata per pid).

Timestamps are wall-clock anchored (``time.time`` at tracer creation)
but advance with ``time.perf_counter``, so durations are monotonic-clock
accurate while spans from different processes on the same machine still
line up on a common axis.

The tracer is deliberately single-threaded per process — the engine's
execution model is a single-threaded iterator tree per process, with
parallelism via *worker processes*, each of which gets its own tracer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

#: Default ring-buffer capacity (finished spans retained per tracer).
DEFAULT_CAPACITY = 8192


class SpanRecord:
    """One finished span.  ``start_s``/``end_s`` are wall-anchored seconds."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start_s", "end_s", "pid", "attrs",
    )

    def __init__(self, trace_id: str, span_id: str, parent_id: str,
                 name: str, start_s: float, end_s: float, pid: int,
                 attrs: Dict[str, Any]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.pid = pid
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pid": self.pid,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SpanRecord":
        return cls(
            d["trace_id"], d["span_id"], d.get("parent_id", ""),
            d["name"], d["start_s"], d["end_s"], d.get("pid", 0),
            d.get("attrs", {}),
        )

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id or None}, "
            f"dur={self.duration_s * 1000:.3f} ms)"
        )


class TraceSpan:
    """Live span handle (context manager) produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "_start", "_entered")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = ""
        self.parent_id = ""
        self._start = 0.0
        self._entered = False

    def set(self, **attrs: Any) -> "TraceSpan":
        """Attach/overwrite attributes mid-span (recorded at exit)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "TraceSpan":
        if self._entered:
            raise RuntimeError(
                f"trace span {self.name!r} is not re-entrant"
            )
        self._entered = True
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._entered:
            raise RuntimeError(
                f"trace span {self.name!r} exited without being entered"
            )
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        self._entered = False


class _NullTraceSpan:
    """No-op stand-in returned by :func:`maybe_span` for a None tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullTraceSpan":
        return self

    def __enter__(self) -> "_NullTraceSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_TRACE_SPAN = _NullTraceSpan()


def maybe_span(tracer: "Optional[Tracer]", name: str, **attrs: Any):
    """``with maybe_span(tracer, "phase"):`` — a no-op when tracer is None."""
    if tracer is None:
        return NULL_TRACE_SPAN
    return tracer.span(name, **attrs)


class Tracer:
    """Produces hierarchical spans and sinks finished ones in a ring buffer.

    >>> t = Tracer()
    >>> with t.span("query", sql="SELECT 1"):
    ...     with t.span("scan"):
    ...         pass
    >>> [r.name for r in t.records()]
    ['scan', 'query']
    >>> scan, query = t.records()
    >>> scan.parent_id == query.span_id
    True
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 _trace_id: Optional[str] = None,
                 _root_parent: str = "",
                 _id_prefix: str = "s"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: Deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: List[TraceSpan] = []
        self._next_span = 0
        self._next_trace = 0
        self.dropped = 0
        self.pid = os.getpid()
        # Wall-anchored monotonic clock: comparable across same-machine
        # processes, immune to wall-clock steps *within* a tracer's life.
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        # Fixed trace id / root parent for worker-side tracers.
        self._fixed_trace_id = _trace_id
        self._root_parent = _root_parent
        self._id_prefix = _id_prefix
        self._current_trace: Optional[str] = _trace_id
        #: Thread id of the last thread to enter a span — how the
        #: sampling profiler attributes a sampled stack to the span
        #: stack (the tracer itself stays single-threaded by design).
        self.owner_thread: Optional[int] = None

    # -- worker-process propagation ----------------------------------------
    def context(self) -> Tuple[str, str]:
        """``(trace_id, current span_id)`` to hand to a worker process."""
        if self._stack:
            top = self._stack[-1]
            return self._current_trace or "", top.span_id
        return self._current_trace or "", ""

    @classmethod
    def for_context(cls, trace_id: str, parent_span_id: str, tag: str,
                    capacity: int = DEFAULT_CAPACITY) -> "Tracer":
        """A worker-side tracer whose roots parent onto ``parent_span_id``.

        ``tag`` must be unique per dispatched task (the caller typically
        uses the parent span id plus a task index) — it prefixes every
        span id this tracer mints, which is what keeps ids collision-free
        when a pool process handles several tasks.
        """
        return cls(capacity=capacity, _trace_id=trace_id,
                   _root_parent=parent_span_id, _id_prefix=tag)

    def export_records(self) -> List[Dict[str, Any]]:
        """Finished spans as picklable dicts (for shipping to the parent)."""
        return [r.as_dict() for r in self._buffer]

    def ingest(self, records: Sequence[Dict[str, Any]]) -> int:
        """Fold records exported by a worker tracer into this buffer.

        Records arrive with globally-unique ids already parented onto one
        of *this* tracer's spans (via :meth:`for_context`), so folding is
        a plain append; returns the number ingested.
        """
        for d in records:
            self._sink(SpanRecord.from_dict(d))
        return len(records)

    # -- span lifecycle ----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> TraceSpan:
        return TraceSpan(self, name, attrs)

    def current_span_id(self) -> str:
        return self._stack[-1].span_id if self._stack else ""

    def span_path(self) -> Tuple[str, ...]:
        """Live span names, outermost first (empty outside any span).

        Safe to call from *other* threads (the sampling profiler does):
        the stack is snapshotted first, so a concurrent enter/exit can
        at worst mis-attribute one sample, never raise.
        """
        return tuple(s.name for s in tuple(self._stack))

    @property
    def depth(self) -> int:
        return len(self._stack)

    def _now(self) -> float:
        return self._epoch_wall + (time.perf_counter() - self._epoch_perf)

    def _enter(self, span: TraceSpan) -> None:
        if self._stack:
            span.parent_id = self._stack[-1].span_id
        else:
            span.parent_id = self._root_parent
            if self._fixed_trace_id is None:
                self._next_trace += 1
                self._current_trace = f"t{self._next_trace}"
        self._next_span += 1
        span.span_id = f"{self._id_prefix}{self._next_span}"
        span._start = self._now()
        self.owner_thread = threading.get_ident()
        self._stack.append(span)

    def _exit(self, span: TraceSpan) -> None:
        # Normal operation is strict LIFO; an abandoned generator whose
        # span is closed late by GC must not corrupt unrelated frames, so
        # remove by identity rather than popping blindly.
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i] is span:
                del self._stack[i]
                break
        self._sink(SpanRecord(
            self._current_trace or "", span.span_id, span.parent_id,
            span.name, span._start, self._now(), self.pid, span.attrs,
        ))

    def _sink(self, record: SpanRecord) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(record)

    # -- sink access & management ------------------------------------------
    def records(self) -> List[SpanRecord]:
        """Snapshot of retained finished spans, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0

    # -- export ------------------------------------------------------------
    def jsonl_lines(self) -> Iterator[str]:
        for r in self._buffer:
            yield json.dumps(r.as_dict(), sort_keys=True)

    def to_jsonl(self, path) -> int:
        """Write one JSON object per span; returns the span count."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")
                n += 1
        return n

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The retained spans as a Chrome ``trace_event`` payload.

        Load the written JSON in Perfetto or ``chrome://tracing``: spans
        from worker processes appear as separate process tracks (their
        records carry the worker pid), named via ``process_name`` metadata
        events.  Timestamps are microseconds relative to the earliest
        retained span.
        """
        return chrome_trace_payload(self.records(), main_pid=self.pid)

    def to_chrome_trace_file(self, path) -> int:
        payload = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1)
            fh.write("\n")
        return len(payload["traceEvents"])

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self._buffer)}/{self.capacity} spans, "
            f"dropped={self.dropped}, depth={self.depth})"
        )


def chrome_trace_payload(records: Sequence[SpanRecord],
                         main_pid: Optional[int] = None) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` dict from finished span records."""
    events: List[Dict[str, Any]] = []
    pids: List[int] = []
    t0 = min((r.start_s for r in records), default=0.0)
    for r in records:
        if r.pid not in pids:
            pids.append(r.pid)
        args: Dict[str, Any] = {
            "trace_id": r.trace_id,
            "span_id": r.span_id,
            "parent_id": r.parent_id,
        }
        args.update(r.attrs)
        events.append({
            "name": r.name,
            "ph": "X",
            "ts": (r.start_s - t0) * 1e6,
            "dur": r.duration_s * 1e6,
            "pid": r.pid,
            "tid": 1,
            "cat": "sgb",
            "args": args,
        })
    for pid in pids:
        label = "sgb-main" if (main_pid is None or pid == main_pid) \
            else f"sgb-worker-{pid}"
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": label},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Dict[str, Any],
                          tolerance_s: float = 0.005) -> List[str]:
    """Structural checks on a Chrome trace payload; returns problem list.

    Verifies that every ``X`` event carries span/parent ids, that parent
    ids resolve, and that each child's ``[ts, ts + dur]`` interval nests
    inside its parent's (within ``tolerance_s``, which absorbs clock-
    anchor skew between processes).  An empty list means the trace is
    well-formed.
    """
    problems: List[str] = []
    spans: Dict[str, Dict[str, Any]] = {}
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        sid = args.get("span_id")
        if not sid:
            problems.append(f"event {ev.get('name')!r} lacks args.span_id")
            continue
        if sid in spans:
            problems.append(f"duplicate span_id {sid!r}")
        spans[sid] = ev
    if not spans:
        problems.append("trace contains no complete (ph=X) span events")
        return problems
    tol_us = tolerance_s * 1e6
    for sid, ev in spans.items():
        parent_id = ev["args"].get("parent_id", "")
        if not parent_id:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {sid!r} ({ev['name']!r}) has unresolved parent "
                f"{parent_id!r}"
            )
            continue
        start, end = ev["ts"], ev["ts"] + ev["dur"]
        p_start, p_end = parent["ts"], parent["ts"] + parent["dur"]
        if start < p_start - tol_us or end > p_end + tol_us:
            problems.append(
                f"span {sid!r} ({ev['name']!r}) [{start:.1f}, {end:.1f}] µs "
                f"does not nest inside parent {parent_id!r} "
                f"[{p_start:.1f}, {p_end:.1f}] µs"
            )
    return problems


def traced_iter(tracer: Optional[Tracer], name: str, it, **attrs: Any):
    """Wrap an iterator in a span covering first ``next()`` to exhaustion.

    The span opens lazily (when iteration starts, not when the generator
    is built) and closes on exhaustion, on error, or when the consumer
    abandons the iterator (``GeneratorExit`` unwinds the ``with``), so
    plan-node spans nest correctly even under LIMIT-style early stops.
    """
    if tracer is None:
        yield from it
        return
    rows = 0
    with tracer.span(name, **attrs) as sp:
        try:
            for row in it:
                rows += 1
                yield row
        finally:
            sp.set(rows=rows)
