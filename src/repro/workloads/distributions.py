"""Seeded sampling helpers shared by the workload generators.

Everything is driven by :class:`random.Random` instances so the generators
are fully deterministic given a seed — a requirement for reproducible
benchmark tables.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple


def gaussian_2d(
    rng: random.Random, center: Tuple[float, float], std: float
) -> Tuple[float, float]:
    return (rng.gauss(center[0], std), rng.gauss(center[1], std))


def zipf_sizes(rng: random.Random, n_items: int, total: int,
               alpha: float = 1.2) -> List[int]:
    """Apportion ``total`` units across ``n_items`` following a Zipf-like
    long tail (used for per-user check-in counts)."""
    weights = [1.0 / (i + 1) ** alpha for i in range(n_items)]
    scale = total / sum(weights)
    sizes = [max(1, int(round(w * scale))) for w in weights]
    # adjust rounding drift onto the head item
    drift = total - sum(sizes)
    sizes[0] = max(1, sizes[0] + drift)
    rng.shuffle(sizes)
    return sizes


def skewed_price(rng: random.Random, lo: float, hi: float) -> float:
    """Log-uniform price in [lo, hi] (TPC-H money columns are right-skewed)."""
    return math.exp(rng.uniform(math.log(lo), math.log(hi)))


def pick_weighted(rng: random.Random, items: Sequence, weights: Sequence[float]):
    total = sum(weights)
    r = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if acc >= r:
            return item
    return items[-1]
