"""Pure-Python kernel backend: the dependency-free reference loops.

Every primitive here is semantically the ground truth the numpy backend
must agree with — the hot-path strategies used exactly these loops inline
before the kernel layer existed, so keeping them verbatim preserves the
seed behaviour (including which ``Metric.within`` calls a
:class:`~repro.core.stats.CountingMetric` observes) when numpy is absent
or ``REPRO_BACKEND=python`` forces this backend.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.kernels._protocols import Coords, MetricLike, Point

name = "python"


# ----------------------------------------------------------------------
# stateless batch primitives
# ----------------------------------------------------------------------
def pairwise_within(points: Sequence[Coords], q: Coords, eps: float,
                    metric: MetricLike) -> List[bool]:
    """Per-point similarity predicate results against probe ``q``."""
    within = metric.within
    return [within(p, q, eps) for p in points]


def neighbors_in_eps(points: Sequence[Coords], q: Coords, eps: float,
                     metric: MetricLike) -> List[int]:
    """Indices of ``points`` within ``eps`` of ``q`` (ascending)."""
    within = metric.within
    return [i for i, p in enumerate(points) if within(p, q, eps)]


def points_in_rect(points: Sequence[Coords], lo: Coords,
                   hi: Coords) -> List[bool]:
    """Bulk closed-boundary PointInRectangleTest."""
    if len(lo) == 2:
        l0, l1 = lo
        h0, h1 = hi
        return [l0 <= p[0] <= h0 and l1 <= p[1] <= h1 for p in points]
    return [
        all(l <= v <= h for v, l, h in zip(p, lo, hi)) for p in points
    ]


def batch_window_query(points: Sequence[Coords], lo: Coords,
                       hi: Coords) -> List[int]:
    """Ascending indices of ``points`` inside the closed box ``[lo, hi]``.

    The index-returning sibling of :func:`points_in_rect`: index gathers
    (grid cell scans, k-d tree / R-tree leaf verification) consume ids,
    not masks, so this saves callers a flatnonzero pass per probe.
    """
    if len(lo) == 2:
        l0, l1 = lo
        h0, h1 = hi
        return [
            i for i, p in enumerate(points)
            if l0 <= p[0] <= h0 and l1 <= p[1] <= h1
        ]
    return [
        i for i, p in enumerate(points)
        if all(l <= v <= h for v, l, h in zip(p, lo, hi))
    ]


def batch_eps_neighbors(points: Sequence[Coords], probes: Sequence[Coords],
                        eps: float, metric: MetricLike) -> List[List[int]]:
    """Per-probe ascending indices of ``points`` within ``eps``.

    The many-probes-at-once primitive behind the batch SGB-Any
    strategies: one candidate block (a k-d tree window gather, an R-tree
    leaf run) verified against a whole chunk of probe points.  Every
    (probe, point) pair is evaluated — no early exit — so a
    ``CountingMetric`` observes exactly ``len(probes) * len(points)``
    calls, matching the numpy backend's bulk charge.
    """
    if not points or not probes:
        return [[] for _ in probes]
    within = metric.within
    return [
        [i for i, p in enumerate(points) if within(p, q, eps)]
        for q in probes
    ]


def all_within(points: Sequence[Coords], q: Coords, eps: float,
               metric: MetricLike) -> bool:
    within = metric.within
    return all(within(p, q, eps) for p in points)


def any_within(points: Sequence[Coords], q: Coords, eps: float,
               metric: MetricLike) -> bool:
    within = metric.within
    return any(within(p, q, eps) for p in points)


# ----------------------------------------------------------------------
# incremental stores
# ----------------------------------------------------------------------
class PointStore:
    """Append-only dense-id point collection with ε-query primitives.

    Ids are the append order (0, 1, 2, ...), matching how the SGB-Any
    strategies number processed points.
    """

    backend = name

    def __init__(self) -> None:
        self._points: List[Point] = []

    def __len__(self) -> int:
        return len(self._points)

    def append(self, point: Point) -> int:
        self._points.append(point)
        return len(self._points) - 1

    def get(self, i: int) -> Point:
        return self._points[i]

    def query_all(self, q: Coords, eps: float,
                  metric: MetricLike) -> List[int]:
        """Ids of all stored points within ``eps`` of ``q``."""
        within = metric.within
        return [
            i for i, p in enumerate(self._points) if within(p, q, eps)
        ]

    def query_ids(self, ids: Iterable[int], q: Coords, eps: float,
                  metric: MetricLike) -> List[int]:
        """Subset of ``ids`` whose point is within ``eps`` of ``q``
        (input order preserved)."""
        within = metric.within
        points = self._points
        return [i for i in ids if within(points[i], q, eps)]

    def query_ids_eps_box(
        self, ids: Iterable[int], q: Coords, eps: float,
        metric: MetricLike, count: bool = True,
    ) -> Tuple[List[int], int]:
        """ε-box-filter ``ids`` around ``q`` then verify with the metric.

        Returns ``(matching ids, number that passed the box test)``.
        The box test is exact for L∞ (the ε-box *is* the ball), so no
        metric evaluation — hence no ``CountingMetric`` charge — happens
        in that case, mirroring the pre-kernel grid strategy.  ``count``
        is a hint for backends whose counting costs extra; here the box
        tally is a free byproduct.
        """
        points = self._points
        dim2 = len(q) == 2
        if dim2:
            lo0, lo1 = q[0] - eps, q[1] - eps
            hi0, hi1 = q[0] + eps, q[1] + eps
        else:
            lo = [v - eps for v in q]
            hi = [v + eps for v in q]
        in_window: List[int] = []
        for i in ids:
            p = points[i]
            if dim2:
                ok = lo0 <= p[0] <= hi0 and lo1 <= p[1] <= hi1
            else:
                ok = all(l <= v <= h for v, l, h in zip(p, lo, hi))
            if ok:
                in_window.append(i)
        if metric.name == "linf":
            return in_window, len(in_window)
        within = metric.within
        return (
            [i for i in in_window if within(points[i], q, eps)],
            len(in_window),
        )


def make_point_store() -> PointStore:
    return PointStore()


def make_rect_store(dim: int) -> Optional["object"]:
    """The python backend has no bulk rectangle store; callers fall back
    to their per-group loops (the seed behaviour)."""
    return None


def make_group_block() -> Optional["object"]:
    """No per-group coordinate block either; ``Group`` keeps its loops."""
    return None
