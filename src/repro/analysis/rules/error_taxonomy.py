"""SGB006 — engine/sql errors belong to the repro.errors taxonomy."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

#: Layers whose raises callers are documented to catch via ReproError.
SCOPE = ("repro.engine", "repro.sql")

#: Builtin exception -> the taxonomy homes to suggest.
SUGGESTIONS = {
    "ValueError": "InvalidParameterError (argument misuse), "
                  "PlanningError (plan construction), or another "
                  "repro.errors subclass",
    "RuntimeError": "ExecutionError, StreamStateError, or another "
                    "repro.errors subclass",
    "TypeError": "ExecutionError (bad runtime value, e.g. a non-numeric "
                 "grouping attribute) or InvalidParameterError "
                 "(argument misuse)",
    "Exception": "a repro.errors subclass",
}


@register
class ErrorTaxonomyRule(Rule):
    """Engine and SQL front-end code must raise ``repro.errors``
    subclasses, not bare builtins.

    ``repro.errors`` documents one contract: *every* library-raised error
    derives from ``ReproError``, so callers catch the whole family with
    one ``except`` while still distinguishing SQL-front-end problems
    (``SQLError``) from operator misuse (``InvalidParameterError``) and
    runtime failures (``ExecutionError``).  A bare ``raise ValueError``
    in ``repro.engine`` or ``repro.sql`` silently escapes that contract —
    shells and services catching ``ReproError`` to keep serving crash
    instead.

    Flags ``raise ValueError(...)`` / ``raise RuntimeError(...)`` /
    ``raise Exception(...)`` (and bare-name re-raises of the same) inside
    ``repro.engine`` and ``repro.sql``.  Internal control-flow raises
    that a boundary converts (e.g. the coercion helpers in
    ``repro.engine.types``, whose ``ValueError`` is caught and re-raised
    as ``InvalidParameterError``) carry line pragmas with justifications.

    Note ``InvalidParameterError`` subclasses ``ValueError``, so
    converting a raise keeps ``except ValueError`` callers working.
    """

    id = "SGB006"
    title = "bare builtin exception raised in engine/sql code"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in SUGGESTIONS:
                yield self.finding(
                    ctx, node,
                    f"raise {name} in {self._layer(ctx)} code escapes "
                    f"the ReproError taxonomy; use "
                    f"{SUGGESTIONS[name]} (see repro.errors)",
                )

    @staticmethod
    def _layer(ctx: FileContext) -> str:
        return "engine" if ctx.in_package("repro.engine") else "sql"
