"""Operator instrumentation: counting similarity-predicate evaluations.

The paper's speedups are fundamentally about *avoiding distance
computations* (the filter-refine structures replace member scans with O(1)
rectangle tests).  Wall-clock numbers in Python carry interpreter noise;
the distance-computation count is the clean, machine-independent way to
verify the claimed savings, and the ``distance-counts`` bench experiment
reports it per strategy.

:class:`CountingMetric` wraps any metric and counts ``distance``/``within``
calls; the SGB operators accept ``count_distance_computations=True`` and
expose the tally via ``distance_computations``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.distance import Metric


class CountingMetric(Metric):
    """Transparent counting proxy around a metric."""

    def __init__(self, inner: Metric):
        self.inner = inner
        self.name = inner.name  # strategies dispatch on the name
        self.calls = 0

    def distance(self, p: Sequence[float], q: Sequence[float]) -> float:
        self.calls += 1
        return self.inner.distance(p, q)

    def within(self, p: Sequence[float], q: Sequence[float],
               eps: float) -> bool:
        self.calls += 1
        return self.inner.within(p, q, eps)

    def reset(self) -> None:
        self.calls = 0
