"""Direct physical-operator tests (bypassing the parser)."""

import pytest

from repro.engine.executor.aggregate import HashAggregate
from repro.engine.executor.relational import (
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    Sort,
)
from repro.engine.executor.scans import DualScan, SeqScan, ValuesScan
from repro.engine.schema import Column, Schema
from repro.engine.table import Table
from repro.errors import PlanningError
from repro.sql.ast_nodes import AggCall, BindContext, BinaryOp, ColumnRef, Literal


def ctx_factory(schema):
    return BindContext(schema)


def values(rows, *cols):
    return ValuesScan(rows, Schema([Column(c, "any", "v") for c in cols]))


class TestScans:
    def test_seq_scan(self):
        t = Table("t", [("a", "int")])
        t.insert_many([(1,), (2,)])
        scan = SeqScan(t, "x")
        assert scan.rows() == [(1,), (2,)]
        assert scan.schema.resolve("a", "x") == 0

    def test_dual(self):
        assert DualScan().rows() == [()]


class TestFilterProject:
    def test_filter_keeps_only_true(self):
        plan = Filter(
            values([(1,), (None,), (3,)], "a"),
            BinaryOp(">", ColumnRef("a"), Literal(1)),
            ctx_factory,
        )
        # NULL comparison yields NULL, which is not True
        assert plan.rows() == [(3,)]

    def test_project_computes(self):
        plan = Project(
            values([(2, 3)], "a", "b"),
            [BinaryOp("*", ColumnRef("a"), ColumnRef("b"))],
            ["prod"],
            ctx_factory,
        )
        assert plan.rows() == [(6,)]
        assert plan.schema.names() == ["prod"]


class TestJoins:
    def test_nested_loop_cross(self):
        plan = NestedLoopJoin(
            values([(1,), (2,)], "a"), values([(10,), (20,)], "b"),
            None, ctx_factory,
        )
        assert sorted(plan.rows()) == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_nested_loop_condition(self):
        plan = NestedLoopJoin(
            values([(1,), (2,)], "a"), values([(1,), (3,)], "b"),
            BinaryOp("<", ColumnRef("a"), ColumnRef("b")),
            ctx_factory,
        )
        assert sorted(plan.rows()) == [(1, 3), (2, 3)]

    def test_hash_join_basic(self):
        left = values([(1, "x"), (2, "y"), (3, "z")], "id", "name")
        right = values([(2, 20.0), (3, 30.0), (4, 40.0)], "rid", "val")
        plan = HashJoin(left, right, [ColumnRef("id")], [ColumnRef("rid")],
                        None, ctx_factory)
        assert sorted(plan.rows()) == [(2, "y", 2, 20.0), (3, "z", 3, 30.0)]

    def test_hash_join_null_keys_never_match(self):
        left = values([(None,), (1,)], "id")
        right = values([(None,), (1,)], "rid")
        plan = HashJoin(left, right, [ColumnRef("id")], [ColumnRef("rid")],
                        None, ctx_factory)
        assert plan.rows() == [(1, 1)]

    def test_hash_join_duplicates_multiply(self):
        left = values([(1,), (1,)], "id")
        right = values([(1,), (1,)], "rid")
        plan = HashJoin(left, right, [ColumnRef("id")], [ColumnRef("rid")],
                        None, ctx_factory)
        assert len(plan.rows()) == 4

    def test_hash_join_residual(self):
        left = values([(1, 5), (1, 50)], "id", "amount")
        right = values([(1, 10)], "rid", "cutoff")
        plan = HashJoin(
            left, right, [ColumnRef("id")], [ColumnRef("rid")],
            BinaryOp("<", ColumnRef("amount"), ColumnRef("cutoff")),
            ctx_factory,
        )
        assert plan.rows() == [(1, 5, 1, 10)]

    def test_hash_join_requires_keys(self):
        # SGB006: plan-construction invariants raise PlanningError (a
        # ReproError), not bare ValueError.
        with pytest.raises(PlanningError):
            HashJoin(values([], "a"), values([], "b"), [], [], None,
                     ctx_factory)


class TestSortLimitDistinct:
    def test_sort_multi_key(self):
        plan = Sort(
            values([(1, "b"), (2, "a"), (1, "a")], "n", "s"),
            [ColumnRef("n"), ColumnRef("s")], [True, True], ctx_factory,
        )
        assert plan.rows() == [(1, "a"), (1, "b"), (2, "a")]

    def test_sort_descending_and_nulls(self):
        plan = Sort(values([(2,), (None,), (1,)], "n"),
                    [ColumnRef("n")], [True], ctx_factory)
        assert plan.rows() == [(None,), (1,), (2,)]
        plan = Sort(values([(2,), (None,), (1,)], "n"),
                    [ColumnRef("n")], [False], ctx_factory)
        assert plan.rows() == [(2,), (1,), (None,)]

    def test_limit(self):
        plan = Limit(values([(i,) for i in range(10)], "a"), 3)
        assert plan.rows() == [(0,), (1,), (2,)]
        assert Limit(values([], "a"), 5).rows() == []

    def test_distinct_preserves_first_occurrence_order(self):
        plan = Distinct(values([(2,), (1,), (2,), (3,), (1,)], "a"))
        assert plan.rows() == [(2,), (1,), (3,)]

    def test_distinct_handles_lists(self):
        plan = Distinct(values([([1, 2],), ([1, 2],)], "a"))
        assert plan.rows() == [([1, 2],)]


class TestHashAggregate:
    def test_grouped(self):
        plan = HashAggregate(
            values([("a", 1), ("b", 2), ("a", 3)], "k", "v"),
            [ColumnRef("k")],
            [AggCall("sum", [ColumnRef("v")]),
             AggCall("count", [], star=True)],
            ctx_factory,
        )
        assert sorted(plan.rows()) == [("a", 4, 2), ("b", 2, 1)]

    def test_scalar_aggregate_empty_input(self):
        plan = HashAggregate(
            values([], "v"), [],
            [AggCall("count", [], star=True),
             AggCall("sum", [ColumnRef("v")])],
            ctx_factory,
        )
        assert plan.rows() == [(0, None)]

    def test_group_order_first_appearance(self):
        plan = HashAggregate(
            values([("z", 1), ("a", 1), ("z", 1)], "k", "v"),
            [ColumnRef("k")],
            [AggCall("count", [], star=True)],
            ctx_factory,
        )
        assert plan.rows() == [("z", 2), ("a", 1)]


class TestExplain:
    def test_tree_rendering(self):
        inner = values([(1,)], "a")
        plan = Limit(Distinct(inner), 5)
        text = plan.explain()
        assert "Limit 5" in text and "Distinct" in text
        assert text.index("Limit") < text.index("Distinct")
