"""Smoke tests: every experiment in the registry produces a sane report.

These run each experiment at tiny sizes — the full-size runs live under
``benchmarks/`` and the ``python -m repro.bench`` CLI.
"""

import pytest

from repro.bench import experiments as ex
from repro.bench.experiments import EXPERIMENTS


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        expected = {
            "table1", "table2",
            "fig9a", "fig9b", "fig9c", "fig9d",
            "fig10a", "fig10b", "fig10c", "fig10d",
            "fig11a", "fig11b", "fig12a", "fig12b",
            "quality", "distance-counts", "cost-model",
            "ablation-indexes", "ablation-hull", "ablation-fanout",
            "ablation-skew",
        }
        assert expected <= set(EXPERIMENTS)


class TestSmallRuns:
    def test_figure9_all_variant(self):
        report = ex.figure9("eliminate", n_points=120,
                            eps_values=(0.2, 0.6), quick=True)
        assert len(report.rows) == 2
        for row in report.rows:
            assert row["all-pairs"] > 0
            assert row["bounds-checking"] > 0
            assert row["index"] > 0
            assert row["groups"] >= 1

    def test_figure9_any_variant(self):
        report = ex.figure9("any", n_points=120, eps_values=(0.3,),
                            quick=True)
        assert report.columns == ["eps", "all-pairs", "index", "groups"]

    def test_figure10(self):
        report = ex.figure10("join-any", scale_factors=(0.5, 1), quick=True)
        ns = report.column("n_points")
        assert ns[1] > ns[0]

    def test_figure10_any(self):
        report = ex.figure10("any", scale_factors=(0.5,), quick=True)
        assert report.rows[0]["index"] > 0

    def test_figure11(self):
        report = ex.figure11("brightkite", sizes=(150,), quick=True)
        row = report.rows[0]
        for method in ("dbscan", "birch", "kmeans-20", "sgb-any",
                       "sgb-all-join-any"):
            assert row[method] > 0

    def test_figure12_panels(self):
        for panel in ("a", "b"):
            report = ex.figure12(panel, scale_factors=(0.5,), quick=True)
            row = report.rows[0]
            assert row["group-by"] > 0
            assert row["sgb-any"] > 0

    def test_table1_slopes_present(self):
        report = ex.table1(sizes=(60, 120), quick=True)
        assert len(report.rows) == 9  # 3 strategies x 3 clauses
        for row in report.rows:
            assert isinstance(row["slope"], float)

    def test_table2(self):
        report = ex.table2(scale_factor=0.5)
        assert len(report.rows) == 9
        assert all(row["seconds"] >= 0 for row in report.rows)

    def test_ablations(self):
        a = ex.ablation_indexes(sizes=(150,), quick=True)
        assert {"all-pairs", "rtree", "grid"} <= set(a.columns)
        b = ex.ablation_hull(sizes=(150,), quick=True)
        assert b.rows[0]["hull-on"] > 0
        c = ex.ablation_fanout(fanouts=(4, 8), n=150, quick=True)
        assert len(c.rows) == 2
        d = ex.ablation_skew(n=200, quick=True)
        assert len(d.rows) == 4
        assert all(row["groups-skewed"] <= row["groups-uniform"] + 50
                   for row in d.rows)

    def test_quality_experiment(self):
        report = ex.quality_comparison(n_points=200, eps_values=(0.2,),
                                       quick=True)
        row = report.rows[0]
        assert -1.0 <= row["ari(any,dbscan)"] <= 1.0
        assert row["groups(any)"] >= 1

    def test_distance_counts_show_savings(self):
        report = ex.distance_counts(n_points=300, eps_values=(0.2,),
                                    quick=True)
        row = report.rows[0]
        assert row["all: index"] * 5 < row["all: all-pairs"]
        assert row["any: index"] * 5 < row["any: all-pairs"]

    def test_cost_model_experiment(self):
        report = ex.cost_model_validation(n_points=300, quick=True)
        assert len(report.rows) == 3
        predicted = {row["strategy"]: row["predicted (dominant op)"]
                     for row in report.rows}
        assert (predicted["index"] < predicted["bounds-checking"]
                < predicted["all-pairs"])


class TestCLI:
    def test_main_runs_one_experiment(self, capsys):
        from repro.bench.__main__ import main

        # monkeypatch-free: run the cheapest experiment id
        rc = main(["table2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 2" in out

    def test_main_rejects_unknown(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_csv_flag(self, capsys):
        from repro.bench.__main__ import main

        main(["table2", "--csv"])
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("query,rows,seconds")

    def test_chart_flag(self, capsys):
        from repro.bench.__main__ import main

        main(["table2", "--chart"])
        out = capsys.readouterr().out
        assert "#" in out and "log scale" in out
