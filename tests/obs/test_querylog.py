"""Query log: fingerprints, drift detection, JSONL round-trip, CLI."""

import json

import pytest

from repro.obs.querylog import (
    DEFAULT_BAND,
    QueryLog,
    QueryRecord,
    aggregate_by_fingerprint,
    load_records,
    main as querylog_main,
    plan_fingerprint,
    plan_signature,
)


class FakeEstimate:
    def __init__(self, rows_int, total_cost=1.0):
        self.rows_int = rows_int
        self.total_cost = total_cost


class FakeChoice:
    def __init__(self, source):
        self.source = source


class FakeNode:
    """Minimal stand-in for a physical plan node."""

    def __init__(self, desc, children=(), strategy=None, choice=None,
                 estimate=None):
        self._desc = desc
        self._children = list(children)
        if strategy is not None:
            self.strategy = strategy
        if choice is not None:
            self.choice = choice
        if estimate is not None:
            self._estimate = estimate

    def describe(self):
        return self._desc

    def children(self):
        return self._children


def sgb_plan(strategy="grid", source="cost", est_rows=100):
    scan = FakeNode("SeqScan(pts)")
    sgb = FakeNode(
        f"SGBAny(eps=1.0) strategy={strategy}/{source}",
        children=[scan], strategy=strategy, choice=FakeChoice(source),
    )
    return FakeNode("Project(count)", children=[sgb],
                    estimate=FakeEstimate(est_rows))


class TestFingerprint:
    def test_signature_depth_prefixed(self):
        plan = sgb_plan()
        assert plan_signature(plan) == [
            "0:Project(count)", "1:SGBAny(eps=1.0)", "2:SeqScan(pts)",
        ]

    def test_stable_across_strategy_choice(self):
        # The chooser's pick is volatile; the fingerprint hashes the plan
        # shape only, so strategy flips don't split the aggregation.
        fp_grid = plan_fingerprint(sgb_plan("grid", "cost"))
        fp_kd = plan_fingerprint(sgb_plan("kdtree", "config"))
        assert fp_grid == fp_kd
        assert len(fp_grid) == 16

    def test_different_shapes_differ(self):
        other = FakeNode("Project(count)",
                         children=[FakeNode("SeqScan(other)")])
        assert plan_fingerprint(sgb_plan()) != plan_fingerprint(other)

    def test_strategy_suffix_with_following_text_not_stripped(self):
        # Only a trailing suffix is volatile; an interior mention stays.
        node = FakeNode("Filter(strategy= x > 1)")
        assert plan_signature(node) == ["0:Filter(strategy= x > 1)"]


class TestDrift:
    def test_ratio_and_band_classification(self):
        log = QueryLog()
        rec = log.record_query("q", sgb_plan(est_rows=100), 100, 0.01)
        assert rec.ratio == pytest.approx(1.0) and not rec.drift
        rec = log.record_query("q", sgb_plan(est_rows=100), 301, 0.01)
        assert rec.drift  # 3.01 > high edge 3.0
        rec = log.record_query("q", sgb_plan(est_rows=100), 300, 0.01)
        assert not rec.drift  # band edges inclusive
        rec = log.record_query("q", sgb_plan(est_rows=100), 30, 0.01)
        assert rec.ratio == pytest.approx(0.3) and rec.drift
        assert log.recorded == 4 and log.drifted == 2

    def test_zero_estimates_clamped(self):
        log = QueryLog()
        rec = log.record_query("q", sgb_plan(est_rows=0), 0, 0.001)
        assert rec.ratio == pytest.approx(1.0) and not rec.drift

    def test_no_estimate_means_no_ratio(self):
        plan = FakeNode("SeqScan(pts)")
        rec = QueryLog().record_query("q", plan, 50, 0.001)
        assert rec.est_rows is None and rec.ratio is None
        assert not rec.drift
        assert rec.strategy == ""

    def test_custom_band(self):
        log = QueryLog(band=(0.5, 2.0))
        assert log.record_query("q", sgb_plan(est_rows=100), 250, 0.01).drift
        assert not QueryLog().record_query(
            "q", sgb_plan(est_rows=100), 250, 0.01).drift

    def test_band_validation(self):
        with pytest.raises(ValueError):
            QueryLog(band=(3.0, 1.0))
        with pytest.raises(ValueError):
            QueryLog(band=(0.0, 3.0))
        with pytest.raises(ValueError):
            QueryLog(capacity=0)


class TestStorage:
    def test_ring_capacity_and_views(self):
        log = QueryLog(capacity=3)
        for i in range(5):
            log.record_query(f"q{i}", sgb_plan(est_rows=100), 100,
                             latency_s=0.001 * (i + 1))
        assert len(log) == 3
        assert log.recorded == 5
        assert [r.sql for r in log.recent(2)] == ["q4", "q3"]
        assert [r.sql for r in log.slowest(2)] == ["q4", "q3"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        log = QueryLog(path=str(path))
        log.record_query("SELECT   1", sgb_plan(est_rows=10), 40, 0.002,
                         counters={"rows_spooled": 40})
        log.record_query("SELECT 2", sgb_plan(est_rows=10), 10, 0.001)
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["sql"] == "SELECT 1"  # whitespace normalized
        assert first["drift"] is True
        assert first["counters"] == {"rows_spooled": 40}
        back = load_records(str(path))
        assert [r.actual_rows for r in back] == [40, 10]
        assert back[0].strategy == "grid"
        assert back[0].ratio == pytest.approx(4.0)

    def test_close_then_append_reopens(self, tmp_path):
        path = tmp_path / "q.jsonl"
        log = QueryLog(path=str(path))
        log.record_query("a", sgb_plan(), 1, 0.001)
        log.close()
        log.record_query("b", sgb_plan(), 1, 0.001)
        log.close()
        assert len(path.read_text().splitlines()) == 2

    def test_load_skips_bad_lines(self, tmp_path):
        path = tmp_path / "q.jsonl"
        path.write_text('{"sql": "ok", "actual_rows": 1}\n'
                        "not json\n\n[1,2]\n")
        records = load_records(str(path))
        assert len(records) == 1 and records[0].sql == "ok"

    def test_status_shape(self, tmp_path):
        path = tmp_path / "q.jsonl"
        log = QueryLog(path=str(path))
        log.record_query("q", sgb_plan(est_rows=10), 400, 0.01)
        status = log.status(slow=1)
        assert status["recorded"] == 1
        assert status["drifted"] == 1
        assert status["retained"] == 1
        assert status["band"] == list(DEFAULT_BAND)
        assert status["path"] == str(path)
        assert status["slow_queries"][0]["sql"] == "q"
        json.dumps(status)  # must be JSON-ready
        log.close()


def skewed_log_records():
    """A skewed workload: one plan badly misestimated, one fine."""
    log = QueryLog()
    for _ in range(4):
        log.record_query("SELECT * FROM skewed ...",
                         sgb_plan("grid", "cost", est_rows=10), 100, 0.004)
    log.record_query("SELECT * FROM skewed ...",
                     sgb_plan("kdtree", "cost", est_rows=10), 90, 0.004)
    for _ in range(3):
        log.record_query("SELECT * FROM uniform ...",
                         FakeNode("Project(x)",
                                  children=[FakeNode("SeqScan(u)")],
                                  estimate=FakeEstimate(50)),
                         55, 0.002)
    return list(log.recent(100))[::-1]


class TestAggregation:
    def test_aggregate_groups_and_orders_by_drift(self):
        groups = aggregate_by_fingerprint(skewed_log_records())
        assert len(groups) == 2
        worst = groups[0]
        assert worst["count"] == 5 and worst["drifted"] == 5
        assert worst["median_ratio"] == pytest.approx(10.0)
        assert worst["worst_ratio"] == pytest.approx(10.0)
        # Strategy flips collapse into the same fingerprint group.
        assert worst["strategies"] == ["grid/cost", "kdtree/cost"]
        assert groups[1]["drifted"] == 0
        assert groups[1]["median_ratio"] == pytest.approx(1.1)

    def test_worst_ratio_symmetric_underestimate(self):
        records = [
            QueryRecord(ts=0, sql="q", fingerprint="f", root="r",
                        strategy="", strategy_source="", est_rows=100,
                        est_cost=None, actual_rows=n, latency_ms=1.0,
                        ratio=n / 100, drift=False, counters={})
            for n in (20, 150)
        ]
        (group,) = aggregate_by_fingerprint(records)
        # 0.2 is farther from 1.0 (5x) than 1.5 — underestimates count.
        assert group["worst_ratio"] == pytest.approx(0.2)


class TestCLI:
    def write_log(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            for r in skewed_log_records():
                fh.write(json.dumps(r.as_dict()) + "\n")
        return path

    def test_text_output_surfaces_drifting_fingerprint(self, tmp_path,
                                                       capsys):
        path = self.write_log(tmp_path)
        assert querylog_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "8 record(s), 2 plan fingerprint(s), 5 drifted" in out
        drift_fp = plan_fingerprint(sgb_plan())
        # The misestimated plan leads the table.
        first_data_line = out.splitlines()[2]
        assert first_data_line.startswith(drift_fp)

    def test_drift_only_and_top(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        assert querylog_main([str(path), "--drift-only", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "5 record(s), 1 plan fingerprint(s), 5 drifted" in out

    def test_json_output(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        assert querylog_main([str(path), "--json"]) == 0
        groups = json.loads(capsys.readouterr().out)
        assert groups[0]["drifted"] == 5

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert querylog_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
