"""CLI behavior: exit codes, formats, baseline flags, self-cleanliness."""

import io
import json
import os

import pytest

from repro.analysis.cli import main

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))

ALL_RULES = ("SGB001", "SGB002", "SGB003", "SGB004", "SGB005", "SGB006",
             "SGB007", "SGB008", "SGB009", "SGB010", "SGB011")


def run(argv):
    buf = io.StringIO()
    code = main(argv, stdout=buf)
    return code, buf.getvalue()


def bad_fixture(rule_id):
    return os.path.join(FIXTURES, f"sgb{rule_id[3:]}_bad.py")


def good_fixture(rule_id):
    return os.path.join(FIXTURES, f"sgb{rule_id[3:]}_good.py")


class TestExitCodes:
    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_each_bad_fixture_exits_nonzero(self, rule_id):
        code, out = run(["--no-baseline", bad_fixture(rule_id)])
        assert code == 1
        assert rule_id in out

    @pytest.mark.parametrize("rule_id", ALL_RULES)
    def test_each_good_fixture_exits_zero(self, rule_id):
        code, out = run(["--no-baseline", good_fixture(rule_id)])
        assert code == 0
        assert "0 finding(s)" in out

    def test_unknown_rule_select_is_usage_error(self):
        code, out = run(["--select", "SGB999", good_fixture("SGB001")])
        assert code == 2

    def test_select_limits_rules(self):
        # sgb001_bad has only SGB001 findings; selecting SGB006 sees none.
        code, _ = run(["--no-baseline", "--select", "SGB006",
                       bad_fixture("SGB001")])
        assert code == 0


class TestFormats:
    def test_text_format_lines(self):
        _, out = run(["--no-baseline", bad_fixture("SGB006")])
        lines = [l for l in out.splitlines() if "SGB006" in l]
        assert len(lines) == 2
        # path:line:col: RULE severity: message
        first = lines[0]
        path, line, col, rest = first.split(":", 3)
        assert path.endswith("sgb006_bad.py")
        assert int(line) > 0 and int(col) >= 0
        assert rest.strip().startswith("SGB006 error")

    def test_json_schema(self):
        code, out = run(["--format", "json", "--no-baseline",
                         bad_fixture("SGB003")])
        assert code == 1
        payload = json.loads(out)
        assert payload["tool"] == "sgblint"
        assert payload["version"] == 1
        assert payload["summary"]["total"] == len(payload["findings"])
        assert payload["summary"]["by_rule"] == {"SGB003": 4}
        assert payload["baseline_problems"] == []
        for f in payload["findings"]:
            assert set(f) == {
                "rule", "path", "line", "col", "message", "severity",
            }
            assert f["severity"] == "error"

    def test_json_clean_run(self):
        code, out = run(["--format", "json", "--no-baseline",
                         good_fixture("SGB002")])
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        assert payload["summary"]["total"] == 0


class TestHelpers:
    def test_explain_prints_rule_doc(self):
        code, out = run(["--explain", "SGB004"])
        assert code == 0
        assert "SGB004" in out and "with" in out

    def test_explain_unknown_rule(self):
        code, out = run(["--explain", "SGB123"])
        assert code == 2

    def test_list_rules(self):
        code, out = run(["--list-rules"])
        assert code == 0
        for rule_id in ALL_RULES:
            assert rule_id in out


class TestBaselineWorkflow:
    def test_update_then_suppress_then_strict(self, tmp_path):
        base = str(tmp_path / "base.json")
        bad = bad_fixture("SGB006")

        code, _ = run(["--baseline", base, bad])
        assert code == 1  # nothing grandfathered yet

        code, out = run(["--baseline", base, "--update-baseline", bad])
        assert code == 0 and "wrote" in out

        code, out = run(["--baseline", base, bad])
        assert code == 0
        assert "2 suppressed by baseline" in out

        # CI gate: TODO justifications written by --update-baseline fail
        # strict mode until a human replaces them.
        code, out = run(["--baseline", base, "--strict-baseline", bad])
        assert code == 1
        assert "lacks a justification" in out

        with open(base) as fh:
            payload = json.load(fh)
        for entry in payload["entries"]:
            entry["justification"] = "deliberate fixture violation"
        with open(base, "w") as fh:
            json.dump(payload, fh)

        code, _ = run(["--baseline", base, "--strict-baseline", bad])
        assert code == 0

    def test_strict_flags_stale_entries(self, tmp_path):
        base = str(tmp_path / "base.json")
        code, _ = run(["--baseline", base, "--update-baseline",
                       bad_fixture("SGB006")])
        assert code == 0
        # Lint a *clean* file against that baseline: all entries stale.
        code, out = run(["--baseline", base, "--strict-baseline",
                         good_fixture("SGB006")])
        assert code == 1
        assert "stale baseline entry" in out

    def test_extra_finding_still_reported_over_baseline(self, tmp_path):
        base = str(tmp_path / "base.json")
        run(["--baseline", base, "--update-baseline",
             bad_fixture("SGB006")])
        # The baseline covers sgb006_bad only; sgb001_bad still gates.
        code, out = run(["--baseline", base, bad_fixture("SGB006"),
                         bad_fixture("SGB001")])
        assert code == 1
        assert "SGB001" in out and "suppressed" in out


class TestSelfClean:
    """The acceptance gate: the tree lints clean against its baseline."""

    def test_repo_lints_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run(["src", "tests", "--strict-baseline"])
        assert code == 0, out

    def test_linter_package_needs_no_baseline(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run(["--no-baseline", "src/repro/analysis"])
        assert code == 0, out

    def test_fixture_walk_exclusion(self, monkeypatch):
        # Directory walks skip the deliberate-violation corpus...
        monkeypatch.chdir(REPO_ROOT)
        code, _ = run(["--no-baseline", "tests/analysis"])
        assert code == 0
        # ...unless explicitly included.
        code, _ = run(["--no-baseline", "--include-fixtures",
                       "tests/analysis"])
        assert code == 1
