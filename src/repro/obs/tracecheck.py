"""Chrome-trace validation CLI (``python -m repro.obs.tracecheck``).

Checks an exported Chrome ``trace_event`` JSON file structurally: every
complete (``ph: "X"``) span must carry ``span_id``/``parent_id`` args,
every parent id must resolve, and every child's ``[ts, ts + dur]``
interval must nest inside its parent's (within a clock-skew tolerance for
cross-process spans).  Optionally asserts a minimum number of distinct
process tracks (``--min-pids 2`` proves worker spans actually crossed the
process boundary).

``--demo OUT.json`` first *produces* a trace to check: it runs a
partition-parallel ``sgb_any`` query on a traced in-memory
:class:`~repro.engine.database.Database` (workers=2, partitions=4), dumps
the Chrome trace to ``OUT.json``, and writes the Prometheus snapshot next
to it (``OUT.prom``).  CI chains ``--demo`` with the validation to smoke-
test the whole tracing path on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.trace import validate_chrome_trace


def build_demo_trace(out_path: Path, workers: int = 2,
                     partitions: int = 4, n: int = 400) -> Path:
    """Run a traced parallel SGB query and dump its Chrome trace."""
    from repro.engine.database import Database

    db = Database(parallel=workers, trace=True)
    db.execute("CREATE TABLE pts (part int, x float, y float)")
    rows = []
    for i in range(n):
        # Four well-separated clusters per partition keeps groups stable.
        cluster = i % 3
        rows.append((
            i % partitions,
            cluster * 10.0 + (i % 7) * 0.05,
            cluster * 10.0 + (i % 5) * 0.05,
        ))
    db.insert("pts", rows)
    result = db.query(
        "SELECT part, count(*) FROM pts GROUP BY x, y "
        "DISTANCE-TO-ANY L2 WITHIN 1 PARTITION BY part"
    )
    assert result.rows, "demo query returned no rows"
    assert db.tracer is not None
    n_events = db.tracer.to_chrome_trace_file(out_path)
    prom_path = out_path.with_suffix(".prom")
    prom_path.write_text(db.metrics_snapshot())
    print(f"demo: {len(result.rows)} result rows, {n_events} trace events "
          f"-> {out_path}, prometheus snapshot -> {prom_path}")
    return out_path


def check_file(path: Path, min_pids: int = 1,
               tolerance_s: float = 0.005) -> int:
    """Validate one trace file; prints findings, returns exit status."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"ERROR: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(payload, tolerance_s=tolerance_s)
    events = [e for e in payload.get("traceEvents", ())
              if e.get("ph") == "X"]
    pids = sorted({e.get("pid") for e in events})
    if len(pids) < min_pids:
        problems.append(
            f"expected >= {min_pids} distinct pids, found {len(pids)}: "
            f"{pids}"
        )
    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1
    print(f"OK: {len(events)} spans across {len(pids)} process track(s) "
          f"nest correctly")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate an exported Chrome trace_event JSON file."
    )
    parser.add_argument("path", type=Path,
                        help="trace file to validate (created by --demo)")
    parser.add_argument("--demo", action="store_true",
                        help="first generate the trace by running a traced "
                             "parallel SGB query")
    parser.add_argument("--min-pids", type=int, default=1,
                        help="require at least this many process tracks")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for --demo")
    parser.add_argument("--partitions", type=int, default=4,
                        help="partition count for --demo")
    parser.add_argument("--tolerance-ms", type=float, default=5.0,
                        help="cross-process nesting tolerance")
    args = parser.parse_args(argv)
    if args.demo:
        build_demo_trace(args.path, workers=args.workers,
                         partitions=args.partitions)
    return check_file(args.path, min_pids=args.min_pids,
                      tolerance_s=args.tolerance_ms / 1000.0)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
