"""A static bucketed k-d tree for batch ε-neighborhood probes.

The Guttman R-tree earns its keep when the index must absorb inserts and
deletes mid-query (SGB-All group rectangles, streaming ingest).  The
batch SGB-Any probe phase has no such requirement: every point is known
before the first probe runs, groups are the connected components of the
ε-graph and therefore independent of processing order, so the index can
be built *once*, perfectly balanced, and queried read-only.  A k-d tree
built by median splits is the textbook structure for that shape: O(n
log n) construction, O(log n + candidates) window gathers, no rectangle
objects, no re-balancing machinery.

Design choices, all in service of the vectorized kernels layer:

* **Bucket leaves** — recursion stops at ``leaf_size`` points; a leaf is
  a contiguous slice of one shared id array.  Window queries gather whole
  leaf slices without per-point tests, handing verification to the batch
  kernels (:func:`repro.kernels.batch_eps_neighbors`) as one block.
* **Positional median splits** — segments split at the middle of the
  sorted order (not by value), so the tree is balanced even under heavy
  duplicate coordinates; a segment with zero spread in every dimension
  becomes a leaf regardless of size.
* **Leaf MBRs** — each leaf stores its tight bounding box, letting the
  batch SGB-Any strategy issue *one* ε-expanded window gather per leaf
  and verify the whole leaf's probes against it in a single kernel call.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError

Point = Tuple[float, ...]

#: Default bucket capacity: big enough that gathered candidate blocks
#: amortize a kernel dispatch, small enough that a leaf's ε-window stays
#: local.  Matches the numpy backend's vectorization break-even region.
DEFAULT_LEAF_SIZE = 32


class _Node:
    """One tree node; ``dim < 0`` marks a leaf owning ``ids[start:end]``."""

    __slots__ = ("dim", "value", "left", "right", "start", "end",
                 "lo", "hi")

    def __init__(self) -> None:
        self.dim = -1
        self.value = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.start = 0
        self.end = 0
        self.lo: Point = ()
        self.hi: Point = ()


class KDTree:
    """Read-only k-d tree over a fixed point set with dense ids.

    Ids are input positions (0..n-1), matching how every SGB strategy
    numbers processed points.  Build with :meth:`build`; the constructor
    is internal.
    """

    def __init__(self, points: List[Point], ids: List[int],
                 root: Optional[_Node], leaf_size: int) -> None:
        self._points = points
        self._ids = ids
        self._root = root
        self._leaf_size = leaf_size

    @classmethod
    def build(cls, points: Sequence[Sequence[float]],
              leaf_size: int = DEFAULT_LEAF_SIZE) -> "KDTree":
        """Median-split construction over all ``points`` (O(n log² n))."""
        if leaf_size < 1:
            raise InvalidParameterError(
                f"leaf_size must be >= 1, got {leaf_size}"
            )
        pts: List[Point] = [tuple(float(v) for v in p) for p in points]
        if pts:
            dim = len(pts[0])
            if dim < 1:
                raise InvalidParameterError("points must have >= 1 dimension")
            for p in pts:
                if len(p) != dim:
                    raise InvalidParameterError(
                        f"point dimension {len(p)} != {dim}"
                    )
        ids = list(range(len(pts)))
        tree = cls(pts, ids, None, leaf_size)
        if pts:
            tree._root = tree._build(0, len(pts))
        return tree

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _segment_bounds(self, start: int, end: int) -> Tuple[Point, Point]:
        pts = self._points
        ids = self._ids
        first = pts[ids[start]]
        lo = list(first)
        hi = list(first)
        for i in range(start + 1, end):
            p = pts[ids[i]]
            for d, v in enumerate(p):
                if v < lo[d]:
                    lo[d] = v
                elif v > hi[d]:
                    hi[d] = v
        return tuple(lo), tuple(hi)

    def _build(self, start: int, end: int) -> _Node:
        node = _Node()
        lo, hi = self._segment_bounds(start, end)
        node.lo, node.hi = lo, hi
        count = end - start
        if count <= self._leaf_size:
            node.start, node.end = start, end
            return node
        # Split along the widest dimension; zero spread everywhere means
        # the segment is one repeated point — keep it as a fat leaf.
        spreads = [h - l for l, h in zip(lo, hi)]
        split_dim = max(range(len(spreads)), key=lambda d: spreads[d])
        if spreads[split_dim] <= 0.0:
            node.start, node.end = start, end
            return node
        pts = self._points
        seg = self._ids[start:end]
        seg.sort(key=lambda i: pts[i][split_dim])
        self._ids[start:end] = seg
        mid = start + count // 2
        node.dim = split_dim
        node.value = pts[self._ids[mid]][split_dim]
        node.left = self._build(start, mid)
        node.right = self._build(mid, end)
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def window_ids(self, lo: Sequence[float],
                   hi: Sequence[float]) -> List[int]:
        """Candidate ids from every leaf overlapping ``[lo, hi]``.

        This is the *gather* half of a window query: whole leaf slices
        are returned without per-point containment tests, mirroring
        :meth:`repro.index.grid.GridIndex.items_in_cell_range` so callers
        verify candidates in one vectorized kernel pass.
        """
        root = self._root
        if root is None:
            return []
        out: List[int] = []
        ids = self._ids
        stack = [root]
        while stack:
            node = stack.pop()
            nlo, nhi = node.lo, node.hi
            if any(
                h < wl or l > wh
                for l, h, wl, wh in zip(nlo, nhi, lo, hi)
            ):
                continue  # node MBR disjoint from the window
            if node.dim < 0:
                out.extend(ids[node.start:node.end])
                continue
            d = node.dim
            left = node.left
            right = node.right
            assert left is not None and right is not None
            if lo[d] <= node.value:
                stack.append(left)
            if hi[d] >= node.value:
                stack.append(right)
        return out

    def eps_candidates(self, point: Sequence[float], eps: float) -> List[int]:
        """Candidate ids for the ε-box window around ``point``."""
        lo = tuple(v - eps for v in point)
        hi = tuple(v + eps for v in point)
        return self.window_ids(lo, hi)

    def leaves(self) -> Iterator[Tuple[List[int], Point, Point]]:
        """Yield ``(member ids, mbr lo, mbr hi)`` per leaf, left to right.

        Leaves come out in split order, which is already a spatial order —
        consecutive leaves are neighbours — so batch consumers that walk
        this iterator probe the tree with strong locality.
        """
        root = self._root
        if root is None:
            return
        ids = self._ids
        stack = [root]
        while stack:
            node = stack.pop()
            if node.dim < 0:
                yield ids[node.start:node.end], node.lo, node.hi
                continue
            assert node.left is not None and node.right is not None
            stack.append(node.right)
            stack.append(node.left)

    def height(self) -> int:
        """Tree height (1 for a lone leaf root) — exposed for tests."""
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.dim < 0:
                return 1
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self._root)

    def check_invariants(self) -> None:
        """Raise AssertionError on structural violations (tests only)."""
        root = self._root
        if root is None:
            assert len(self._points) == 0
            return
        seen: List[int] = []

        def walk(node: _Node) -> None:
            if node.dim < 0:
                assert node.start < node.end, "empty leaf"
                for i in range(node.start, node.end):
                    pid = self._ids[i]
                    seen.append(pid)
                    p = self._points[pid]
                    assert all(
                        l <= v <= h
                        for v, l, h in zip(p, node.lo, node.hi)
                    ), "leaf MBR does not cover member"
                return
            left, right = node.left, node.right
            assert left is not None and right is not None
            assert left.hi[node.dim] <= node.value, (
                "left subtree crosses the split plane"
            )
            assert right.lo[node.dim] >= node.value, (
                "right subtree crosses the split plane"
            )
            walk(left)
            walk(right)

        walk(root)
        assert sorted(seen) == list(range(len(self._points))), (
            "leaves do not partition the id space"
        )
