"""Project-wide symbol table for sgblint's cross-module rules.

One :class:`SymbolTable` indexes every analyzed file: modules, their
imports, top-level functions, classes with their methods and a
best-effort map of ``self.<attr>`` types.  Rules use it to resolve a
dotted name *as written in some module* to a global qualified name
(``repro.engine.database.Database.execute``), to walk a class's bases,
and to dispatch method calls on known repro types.

Resolution is deliberately conservative: anything dynamic (calls,
subscripts, rebinding, ``*`` imports) resolves to ``None`` and the
cross-module rules simply do not follow it.  A linter that guesses
wrong is worse than one that abstains — false positives erode the
baseline's signal.

Names outside the analyzed set (``time``, ``queue``, ``asyncio``) still
resolve *textually* through the import table: ``from queue import Queue``
makes ``Queue(...)`` resolve to the dotted string ``queue.Queue`` even
though no :class:`ClassSymbol` exists for it.  The call graph leans on
this to classify stdlib calls (``time.sleep``, ``queue.Queue.put``)
without modeling the stdlib.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.astutil import dotted_name
from repro.analysis.context import FileContext


class FunctionSymbol:
    """One function or method definition."""

    __slots__ = ("qualname", "module", "name", "cls", "node", "path",
                 "is_async", "nested", "param_types")

    def __init__(self, qualname: str, module: str, name: str,
                 cls: Optional[str], node: ast.AST, path: str,
                 is_async: bool, nested: bool = False):
        self.qualname = qualname
        self.module = module
        self.name = name
        #: Simple name of the enclosing class, or None for module level.
        self.cls = cls
        self.node = node
        self.path = path
        self.is_async = is_async
        #: Defined inside another function (closures never pickle, and
        #: the call graph treats them as part of the enclosing scope).
        self.nested = nested
        #: Parameter name -> dotted type name (from annotations), used
        #: for method dispatch on annotated parameters.
        self.param_types: Dict[str, str] = {}

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)

    def __repr__(self) -> str:
        return f"<FunctionSymbol {self.qualname}>"


class ClassSymbol:
    """One class definition with its methods and inferred attribute types."""

    __slots__ = ("qualname", "module", "name", "node", "path", "bases",
                 "methods", "attr_types", "lock_attrs")

    def __init__(self, qualname: str, module: str, name: str,
                 node: ast.ClassDef, path: str):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.node = node
        self.path = path
        #: Base-class names exactly as written (dotted), resolved lazily.
        self.bases: List[str] = []
        self.methods: Dict[str, FunctionSymbol] = {}
        #: ``self.<attr>`` -> dotted type name, inferred from
        #: ``self.x = ClassName(...)`` constructor assignments and
        #: ``x: ClassName`` annotations (module-local spelling).
        self.attr_types: Dict[str, str] = {}
        #: Attributes assigned a ``threading.Lock()`` / ``RLock()``.
        self.lock_attrs: Set[str] = set()

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)

    def __repr__(self) -> str:
        return f"<ClassSymbol {self.qualname}>"


class ModuleSymbol:
    """One analyzed file, under its dotted module identity."""

    __slots__ = ("name", "path", "ctx", "imports", "functions", "classes",
                 "import_modules")

    def __init__(self, name: str, path: str, ctx: FileContext):
        self.name = name
        self.path = path
        self.ctx = ctx
        #: Local name -> dotted target.  ``import queue`` -> ``queue:
        #: queue``; ``from repro.obs.trace import Tracer as T`` ->
        #: ``T: repro.obs.trace.Tracer``; ``import a.b`` -> ``a: a``.
        self.imports: Dict[str, str] = {}
        #: Dotted module names this module imports (edges of the import
        #: graph; includes targets outside the analyzed set).
        self.import_modules: Set[str] = set()
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}

    def __repr__(self) -> str:
        return f"<ModuleSymbol {self.name}>"


#: Constructor names treated as lock factories for ``lock_attrs``.
_LOCK_CTORS = frozenset({"Lock", "RLock"})


class SymbolTable:
    """Index of every module/class/function across the analyzed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        self.functions: Dict[str, FunctionSymbol] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, contexts: Iterable[FileContext]) -> "SymbolTable":
        table = cls()
        for ctx in contexts:
            table.add_module(ctx)
        return table

    def add_module(self, ctx: FileContext) -> ModuleSymbol:
        mod = ModuleSymbol(ctx.module, ctx.path, ctx)
        # Last write wins when two files claim one module identity (e.g.
        # a fixture impersonating a repro module next to the real one) —
        # callers control the file set, so this stays predictable.
        self.modules[mod.name] = mod
        self._collect_imports(mod)
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls_sym=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
        return mod

    def _collect_imports(self, mod: ModuleSymbol) -> None:
        for node in ast.walk(mod.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    mod.imports[local] = target
                    mod.import_modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: abstain
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{node.module}.{alias.name}"
                mod.import_modules.add(node.module)

    def _add_function(self, mod: ModuleSymbol, node: ast.AST,
                      cls_sym: Optional[ClassSymbol]) -> FunctionSymbol:
        name = node.name  # type: ignore[attr-defined]
        if cls_sym is None:
            qualname = f"{mod.name}.{name}"
        else:
            qualname = f"{cls_sym.qualname}.{name}"
        sym = FunctionSymbol(
            qualname, mod.name, name,
            cls_sym.name if cls_sym is not None else None,
            node, mod.path,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        for arg in self._all_args(node):
            if arg.annotation is not None:
                ann = _annotation_name(arg.annotation)
                if ann:
                    sym.param_types[arg.arg] = ann
        if cls_sym is None:
            mod.functions[name] = sym
        else:
            cls_sym.methods[name] = sym
        self.functions[qualname] = sym
        # Index nested definitions too (picklability checks want them),
        # but under the enclosing function's qualname.
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = FunctionSymbol(
                    f"{qualname}.<locals>.{child.name}", mod.name,
                    child.name, sym.cls, child, mod.path,
                    is_async=isinstance(child, ast.AsyncFunctionDef),
                    nested=True,
                )
                self.functions[nested.qualname] = nested
        return sym

    @staticmethod
    def _all_args(node: ast.AST) -> List[ast.arg]:
        args = node.args  # type: ignore[attr-defined]
        out = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg:
            out.append(args.vararg)
        if args.kwarg:
            out.append(args.kwarg)
        return out

    def _add_class(self, mod: ModuleSymbol, node: ast.ClassDef) -> None:
        qualname = f"{mod.name}.{node.name}"
        cls_sym = ClassSymbol(qualname, mod.name, node.name, node, mod.path)
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted:
                cls_sym.bases.append(dotted)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, item, cls_sym=cls_sym)
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                ann = _annotation_name(item.annotation)
                if ann:
                    cls_sym.attr_types[item.target.id] = ann
        self._infer_attr_types(cls_sym)
        mod.classes[node.name] = cls_sym
        self.classes[qualname] = cls_sym

    def _infer_attr_types(self, cls_sym: ClassSymbol) -> None:
        """``self.x = ClassName(...)`` / ``self.x: ClassName`` in any
        method body -> ``attr_types['x'] = 'ClassName'`` (module-local
        spelling, resolved through the import table on lookup)."""
        for method in cls_sym.methods.values():
            for node in ast.walk(method.node):
                target = None
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, None
                    ann = _annotation_name(node.annotation)
                    if ann and _is_self_attr(target):
                        cls_sym.attr_types.setdefault(target.attr, ann)
                    continue
                if target is None or not _is_self_attr(target):
                    continue
                if isinstance(value, ast.Call):
                    ctor = dotted_name(value.func)
                    if ctor:
                        cls_sym.attr_types.setdefault(target.attr, ctor)
                        tail = ctor.rsplit(".", 1)[-1]
                        if tail in _LOCK_CTORS:
                            cls_sym.lock_attrs.add(target.attr)

    # -- resolution --------------------------------------------------------
    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve ``dotted`` as written in ``module`` to a global name.

        The result is a qualified name that may or may not exist in the
        table (``queue.Queue`` resolves textually even though the stdlib
        is not analyzed).  Returns ``None`` when the head of the chain is
        not a module-scope binding we track.
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in mod.imports:
            target = mod.imports[head]
        elif head in mod.functions:
            target = mod.functions[head].qualname
        elif head in mod.classes:
            target = mod.classes[head].qualname
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def lookup_class(self, qualname: str) -> Optional[ClassSymbol]:
        return self.classes.get(qualname)

    def lookup_function(self, qualname: str) -> Optional[FunctionSymbol]:
        return self.functions.get(qualname)

    def resolve_class(self, module: str, dotted: str) -> Optional[ClassSymbol]:
        qualname = self.resolve(module, dotted)
        if qualname is None:
            return None
        return self.classes.get(qualname)

    # -- class hierarchy ---------------------------------------------------
    def mro(self, cls_sym: ClassSymbol) -> List[ClassSymbol]:
        """The class and its known bases, depth-first, cycle-safe.

        Not Python's C3 — with single inheritance everywhere in this
        repo, a depth-first walk over *resolvable* bases is exact.
        """
        out: List[ClassSymbol] = []
        seen: Set[str] = set()
        stack = [cls_sym]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            for base in current.bases:
                resolved = self.resolve_class(current.module, base)
                if resolved is not None:
                    stack.append(resolved)
        return out

    def resolve_method(self, cls_sym: ClassSymbol,
                       method: str) -> Optional[FunctionSymbol]:
        for klass in self.mro(cls_sym):
            if method in klass.methods:
                return klass.methods[method]
        return None

    def is_subclass_of(self, cls_sym: ClassSymbol, base_name: str) -> bool:
        """True when any class in the MRO is named ``base_name`` (simple
        name match, so fixtures that cannot import the real base still
        participate) or resolves to it."""
        for klass in self.mro(cls_sym):
            if klass.name == base_name or klass.qualname == base_name:
                return True
            for base in klass.bases:
                if base == base_name or base.endswith("." + base_name) or \
                        base.rsplit(".", 1)[-1] == base_name:
                    return True
        return False

    # -- import graph ------------------------------------------------------
    def import_edges(self) -> Dict[str, Set[str]]:
        """Module -> imported modules, restricted to the analyzed set.

        ``from repro.obs.trace import Tracer`` contributes an edge to
        ``repro.obs.trace``; imports of unanalyzed modules are dropped
        (the cache's dependency cone only needs edges it can hash).
        """
        known = set(self.modules)
        edges: Dict[str, Set[str]] = {}
        for name, mod in self.modules.items():
            targets: Set[str] = set()
            for imported in mod.import_modules:
                if imported in known:
                    targets.add(imported)
                    continue
                # ``from repro.engine.database import Database`` names a
                # module; ``from repro.engine import database`` names a
                # package whose *attribute* is the module.
                for local_target in mod.imports.values():
                    if local_target.startswith(imported + ".") and \
                            local_target in known:
                        targets.add(local_target)
            targets.discard(name)
            edges[name] = targets
        return edges


def _annotation_name(node: ast.AST) -> Optional[str]:
    """Extract a class name from an annotation node.

    Handles plain names, dotted names, string annotations, and unwraps
    one level of ``Optional[X]``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip('"').strip("'")
        if text.startswith("Optional[") and text.endswith("]"):
            text = text[len("Optional["):-1]
        # Drop generic parameters: ``queue.Queue[Optional[X]]`` -> the
        # runtime type ``queue.Queue``.
        if "[" in text:
            text = text.split("[", 1)[0]
        return text or None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.value)
        if base in ("Optional", "typing.Optional"):
            return _annotation_name(node.slice)
        return base
    return dotted_name(node)


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")
