"""Incremental SGB-Any: connected ε-components maintained under insertion.

SGB-Any is the order-independent member of the operator family (the
companion order-independence analysis, Tang et al., arXiv:1412.4303): its
output is the set of connected components of the ε-neighbourhood graph,
which depends only on the point *set*.  That makes it the natural engine
for continuous ingestion — a snapshot after any prefix equals the batch
operator run on that prefix, regardless of how the prefix was chopped into
micro-batches.

The engine keeps the same two structures the batch operator builds once:

* the incremental Union-Find forest (``repro/dsu/union_find.py``) holding
  the current components, and
* a grid or R-tree neighbor index (:mod:`repro.streaming.neighbors`)
  answering ε-range probes for each arriving point.

``snapshot()`` is non-destructive and O(n α(n)); ``result()`` closes the
stream and returns the final grouping.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.api import check_eps, validate_point
from repro.core.distance import Metric, resolve_metric
from repro.core.result import GroupingResult
from repro.dsu.union_find import UnionFind
from repro.errors import StreamStateError
from repro.streaming.neighbors import make_neighbor_index
from repro.streaming.stats import StreamStats

Point = Tuple[float, ...]


class StreamingSGBAny:
    """Maintains SGB-Any groups online under point insertion.

    Parameters
    ----------
    eps:
        Similarity threshold, strictly positive (the neighbor indexes are
        sized by ε).
    metric:
        ``"l2"``, ``"linf"``, ``"l1"``, or a Metric instance.
    index:
        ``"grid"`` (default; constant-cell probes), ``"rtree"``, or
        ``"linear"`` (all-pairs baseline).
    count_distances:
        Wrap the metric in a counting proxy so
        ``stats.distance_computations`` is populated.

    >>> eng = StreamingSGBAny(eps=1.0)
    >>> eng.extend([(0, 0), (0.5, 0), (9, 9)])
    >>> eng.snapshot().group_sizes()
    [2, 1]
    >>> eng.insert((8.5, 9.0))   # merges with (9, 9) on contact
    >>> eng.n_groups
    2
    """

    def __init__(
        self,
        eps: float,
        metric: Union[str, Metric] = "l2",
        index: str = "grid",
        rtree_max_entries: int = 16,
        count_distances: bool = False,
    ):
        check_eps(eps, require_positive=True)
        self.eps = float(eps)
        self.metric = resolve_metric(metric)
        if count_distances:
            from repro.core.stats import CountingMetric

            self.metric = CountingMetric(self.metric)
        self._index = make_neighbor_index(
            index, self.eps, self.metric, rtree_max_entries
        )
        self._uf = UnionFind()
        self._points: List[Point] = []
        self._dim: Optional[int] = None
        self._closed = False
        self.stats = StreamStats()

    # ------------------------------------------------------------------
    @property
    def index_name(self) -> str:
        return self._index.name

    @property
    def n_points(self) -> int:
        return len(self._points)

    @property
    def n_groups(self) -> int:
        """Current number of connected components."""
        return self._uf.n_components

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float]) -> None:
        """Ingest one point, merging every component it touches."""
        if self._closed:
            raise StreamStateError("streaming engine already closed by result()")
        pt, self._dim = validate_point(point, self._dim)
        pid = len(self._points)
        self._points.append(pt)
        self._uf.add(pid)
        stats = self.stats
        stats.points += 1
        stats.groups_created += 1
        stats.index_probes += 1
        hits, neighbors = self._index.probe(pt)
        stats.candidates += hits
        before = self._uf.n_components
        for nb in neighbors:
            self._uf.union(pid, nb)
        stats.groups_merged += before - self._uf.n_components
        self._index.insert(pid, pt)
        if hasattr(self.metric, "calls"):
            stats.distance_computations = self.metric.calls

    def extend(self, points: Iterable[Sequence[float]]) -> None:
        for p in points:
            self.insert(p)

    # ------------------------------------------------------------------
    def snapshot(self) -> GroupingResult:
        """Current grouping, without closing the stream.

        Labels are dense in order of first appearance over insertion order
        — exactly the numbering :meth:`SGBAnyOperator.finalize` produces,
        so a snapshot compares equal to the batch operator run on the same
        prefix.
        """
        labels: List[int] = []
        root_to_label: dict = {}
        find = self._uf.find
        for pid in range(len(self._points)):
            root = find(pid)
            label = root_to_label.get(root)
            if label is None:
                label = root_to_label[root] = len(root_to_label)
            labels.append(label)
        return GroupingResult(labels, self._points)

    def result(self) -> GroupingResult:
        """Close the stream and return the final grouping."""
        if self._closed:
            raise StreamStateError("streaming engine already closed by result()")
        out = self.snapshot()
        self._closed = True
        return out

    def __repr__(self) -> str:
        return (
            f"StreamingSGBAny(eps={self.eps}, metric={self.metric.name!r}, "
            f"index={self.index_name!r}, n_points={self.n_points}, "
            f"n_groups={self.n_groups})"
        )
