"""Computational-geometry substrate: rectangles, convex hulls, polygons."""

from repro.geometry.convex_hull import (
    IncrementalHull,
    convex_hull,
    diameter,
    farthest_vertex,
    point_in_convex_polygon,
)
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect, eps_all_rect

__all__ = [
    "Rect",
    "eps_all_rect",
    "convex_hull",
    "point_in_convex_polygon",
    "farthest_vertex",
    "diameter",
    "IncrementalHull",
    "Polygon",
]
