"""Wire-format round trips: values, rows, results, errors, framing."""

import datetime
import json
import math

import pytest

from repro.engine.database import QueryResult, StatementResult
from repro.errors import (
    PlanningError,
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import wire


class TestValues:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 42, -7, "text", "ünïcode", 1.5, -0.25,
        datetime.date(2009, 3, 29), [1, 2.5, None], ["a", ["b", "c"]],
    ])
    def test_round_trip_identity(self, value):
        assert wire.decode_value(wire.encode_value(value)) == value

    def test_nan_round_trips(self):
        out = wire.decode_value(wire.encode_value(math.nan))
        assert isinstance(out, float) and math.isnan(out)

    @pytest.mark.parametrize("value", [math.inf, -math.inf])
    def test_inf_round_trips(self, value):
        assert wire.decode_value(wire.encode_value(value)) == value

    def test_special_floats_are_json_safe(self):
        # The whole point of the tagging: allow_nan=False must accept it.
        encoded = wire.encode_value([math.nan, math.inf, -math.inf])
        json.dumps(encoded, allow_nan=False)

    def test_date_encoding_is_tagged(self):
        assert wire.encode_value(datetime.date(2026, 8, 7)) == {
            "$d": "2026-08-07"
        }

    def test_bool_not_mistaken_for_int(self):
        assert wire.encode_value(True) is True
        assert wire.decode_value(False) is False

    def test_unserializable_type_raises(self):
        with pytest.raises(ServiceError, match="not wire-serializable"):
            wire.encode_value(object())

    def test_unknown_float_tag_raises(self):
        with pytest.raises(ServiceError, match="unknown float tag"):
            wire.decode_value({"$f": "seven"})

    def test_unknown_tag_raises(self):
        with pytest.raises(ServiceError, match="unknown tagged value"):
            wire.decode_value({"$x": 1})

    def test_rows_come_back_as_tuples(self):
        rows = [(1, "a"), (2, None)]
        decoded = wire.decode_rows(wire.encode_rows(rows))
        assert decoded == rows
        assert all(isinstance(r, tuple) for r in decoded)


class TestResults:
    def test_query_result_round_trip(self):
        result = QueryResult(
            ["x", "grp"],
            [(1.5, 0), (math.nan, 1), (None, 2)],
        )
        back = wire.decode_result(wire.encode_result(result))
        assert isinstance(back, QueryResult)
        assert back.columns == result.columns
        assert back.rows[0] == (1.5, 0)
        assert math.isnan(back.rows[1][0])
        assert back.rows[2] == (None, 2)

    def test_statement_result_round_trip(self):
        back = wire.decode_result(
            wire.encode_result(StatementResult("INSERT 3"))
        )
        assert isinstance(back, StatementResult)
        assert back.status == "INSERT 3"

    def test_none_result_becomes_ok_status(self):
        assert wire.encode_result(None) == {"kind": "status", "status": "OK"}

    def test_unknown_kind_raises(self):
        with pytest.raises(ServiceError, match="unknown result kind"):
            wire.decode_result({"kind": "blob"})


class TestErrors:
    @pytest.mark.parametrize("exc_type", [
        QueryTimeoutError, ServiceOverloadedError, PlanningError,
    ])
    def test_typed_error_round_trip(self, exc_type):
        payload = wire.error_payload(exc_type("boom"))
        with pytest.raises(exc_type, match="boom"):
            wire.raise_error(payload)

    def test_unknown_type_degrades_to_service_error(self):
        with pytest.raises(ServiceError, match="NoSuchError: nope"):
            wire.raise_error({"type": "NoSuchError", "message": "nope"})

    def test_non_repro_type_name_not_resolved(self):
        # Only ReproError subclasses may be instantiated from the wire —
        # the type name is untrusted input.
        with pytest.raises(ServiceError, match="KeyboardInterrupt"):
            wire.raise_error({"type": "KeyboardInterrupt", "message": ""})


class TestFraming:
    def test_dumps_is_deterministic(self):
        a = wire.dumps({"b": 1, "a": [2, 3], "id": "r1"})
        b = wire.dumps({"id": "r1", "a": [2, 3], "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_loads_round_trip(self):
        msg = {"id": "r1", "op": "query", "sql": "SELECT 1"}
        assert wire.loads(wire.dumps(msg)) == msg

    def test_loads_rejects_garbage(self):
        with pytest.raises(ServiceError, match="malformed"):
            wire.loads(b"{nope")

    def test_loads_rejects_non_object(self):
        with pytest.raises(ServiceError, match="JSON object"):
            wire.loads(b"[1, 2]")


class TestRenderValue:
    @pytest.mark.parametrize("value,expected", [
        (None, "NULL"),
        (1.5, "1.5"),
        (2.0, "2"),
        (math.nan, "NaN"),
        (math.inf, "Infinity"),
        (-math.inf, "-Infinity"),
        ([1, None, "x"], "{1,NULL,x}"),
        ("plain", "plain"),
        (7, "7"),
    ])
    def test_display_forms(self, value, expected):
        assert wire.render_value(value) == expected

    def test_shell_uses_the_shared_renderer(self):
        # The shell's table formatter and the wire renderer must not
        # drift: local and remote results display identically.
        from repro.engine import shell as shell_mod

        assert shell_mod._render is wire.render_value
