"""Fixed log-bucketed latency histograms (the ``HistogramTimer`` layer).

The flat ``MetricBag`` timings added for EXPLAIN ANALYZE only report
*totals* — good enough for "where did the time go", useless for "how is it
distributed".  The paper's evaluation cares about per-probe behaviour (a
single slow FindCloseGroups probe against a degenerate MBR forest looks
identical to a thousand fast ones in a total), so this module provides the
distribution-preserving counterpart:

* :class:`LatencyHistogram` — a fixed set of base-2 log buckets from 1 µs
  to ~9.5 h plus an overflow bucket.  Observations are O(log n_buckets)
  (a bisect over the precomputed bounds), merging two histograms is exact
  (bucket-wise addition, which is what lets worker-process histograms fold
  back into the parent), and quantiles are upper-bound estimates in the
  Prometheus style (the reported p99 is the smallest bucket boundary with
  at least 99 % of the mass at or below it, clamped to the observed max).
* :class:`HistogramTimer` — the ``with`` adapter that records one elapsed
  wall-time observation into a histogram, mirroring
  :class:`~repro.obs.metrics.Span` for the flat timings.

The bucket scheme is *fixed* (not per-histogram) so that any two
histograms anywhere in the system can be merged and so the Prometheus
``le`` label values are stable across processes and runs.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from types import TracebackType
from typing import Dict, Iterator, List, Optional, Tuple, Type

#: Picklable :meth:`LatencyHistogram.state` snapshot:
#: ``(counts, count, sum_s, max_s, min_s)``.
HistState = Tuple[List[int], int, float, float, float]

#: First finite bucket boundary, in seconds (1 µs).
BUCKET_START_S = 1e-6

#: Multiplicative bucket growth factor (base-2 log buckets).
BUCKET_GROWTH = 2.0

#: Number of finite buckets; the last finite boundary is
#: ``BUCKET_START_S * BUCKET_GROWTH ** (N_BUCKETS - 1)`` ≈ 34360 s.  One
#: implicit overflow (+Inf) bucket follows.
N_BUCKETS = 36

#: Precomputed inclusive upper bounds of the finite buckets.
BUCKET_BOUNDS_S: Tuple[float, ...] = tuple(
    BUCKET_START_S * BUCKET_GROWTH ** i for i in range(N_BUCKETS)
)

#: Histogram names the engine records when instrumentation is attached;
#: the Prometheus exporter emits these even at zero count so scrape
#: targets have a stable series set.
HISTOGRAM_FIELDS = (
    "probe_latency",
    "distance_batch_latency",
    "micro_batch_latency",
)


def bucket_index(seconds: float) -> int:
    """The bucket an observation falls into.

    Bounds are *inclusive* upper bounds (Prometheus ``le`` semantics): an
    observation exactly on a boundary lands in that boundary's bucket.
    Index ``N_BUCKETS`` is the overflow bucket.  Non-positive values land
    in bucket 0.
    """
    if seconds <= BUCKET_START_S:
        return 0
    return bisect_left(BUCKET_BOUNDS_S, seconds)


class LatencyHistogram:
    """Counts of observations per fixed log bucket, plus sum/min/max.

    >>> h = LatencyHistogram()
    >>> for v in (1e-6, 2e-6, 3e-6, 1.0):
    ...     h.observe(v)
    >>> h.count
    4
    >>> h.quantile(0.5) <= h.quantile(0.99) <= h.max_s
    True
    """

    __slots__ = ("counts", "count", "sum_s", "max_s", "min_s")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (N_BUCKETS + 1)
        self.count = 0
        self.sum_s = 0.0
        self.max_s = 0.0
        self.min_s = math.inf

    # -- recording ---------------------------------------------------------
    def observe(self, seconds: float) -> None:
        self.counts[bucket_index(seconds)] += 1
        self.count += 1
        self.sum_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        if seconds < self.min_s:
            self.min_s = seconds

    def timer(self) -> "HistogramTimer":
        return HistogramTimer(self)

    # -- queries -----------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Upper-bound quantile estimate (Prometheus style).

        Returns the smallest bucket boundary such that at least ``q`` of
        the observations are at or below it, clamped to the observed
        maximum (so ``quantile(1.0) == max_s``).  Zero when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                if i >= N_BUCKETS:  # overflow bucket has no finite bound
                    return self.max_s
                return min(BUCKET_BOUNDS_S[i], self.max_s)
        return self.max_s  # pragma: no cover - unreachable (seen == count)

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "max_s": self.max_s,
        }

    def bucket_items(self) -> Iterator[Tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, Prometheus-shaped.

        Trailing all-equal buckets are collapsed: only buckets up to the
        last non-empty one are yielded, followed by ``(inf, count)``.
        """
        cumulative = 0
        last = max(
            (i for i, n in enumerate(self.counts[:N_BUCKETS]) if n), default=-1
        )
        for i in range(last + 1):
            cumulative += self.counts[i]
            yield BUCKET_BOUNDS_S[i], cumulative
        yield math.inf, self.count

    # -- aggregation -------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum_s += other.sum_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s
        if other.min_s < self.min_s:
            self.min_s = other.min_s
        return self

    # -- (de)serialization for worker-process fold-back --------------------
    def state(self) -> HistState:
        """Picklable snapshot; inverse of :meth:`from_state`."""
        return (list(self.counts), self.count, self.sum_s, self.max_s,
                self.min_s)

    @classmethod
    def from_state(cls, state: HistState) -> "LatencyHistogram":
        h = cls()
        counts, h.count, h.sum_s, h.max_s, h.min_s = state
        h.counts = list(counts)
        return h

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": self.count,
            "sum_s": self.sum_s,
        }
        out.update(self.percentiles())
        return out

    def __bool__(self) -> bool:
        return self.count > 0

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        p = self.percentiles()
        return (
            f"LatencyHistogram(count={self.count}, "
            f"p50={p['p50_s']:.6f}s, p99={p['p99_s']:.6f}s, "
            f"max={self.max_s:.6f}s)"
        )


class HistogramTimer:
    """Context manager recording one elapsed-time observation.

    The histogram analogue of :class:`~repro.obs.metrics.Span`; like Span
    it is single-use and guards against exiting unentered.
    """

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: LatencyHistogram):
        self._hist = hist
        self._t0: Optional[float] = None

    def __enter__(self) -> "HistogramTimer":
        if self._t0 is not None:
            raise RuntimeError(
                "HistogramTimer is not re-entrant; create a new timer"
            )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        if self._t0 is None:
            raise RuntimeError("HistogramTimer exited without being entered")
        self._hist.observe(time.perf_counter() - self._t0)
        self._t0 = None
