"""Grouping-quality metrics (from scratch) for comparing methods.

The paper compares SGB against clustering on *runtime*; a downstream user
also wants to know how the groupings relate.  This module provides the
standard external clustering measures — Adjusted Rand Index, Normalized
Mutual Information, and purity — implemented over plain label sequences so
they apply uniformly to :class:`~repro.core.result.GroupingResult` labels,
DBSCAN labels, and K-means labels.

Negative labels (SGB ELIMINATE, DBSCAN noise) denote unassigned points;
pairs involving them are excluded the same way scikit-learn treats them
when filtered out, and :func:`filter_assigned` does the masking.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.errors import InvalidParameterError


def filter_assigned(
    a: Sequence[int], b: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Drop positions where either labelling is negative (unassigned)."""
    if len(a) != len(b):
        raise InvalidParameterError("label sequences must align")
    pairs = [(x, y) for x, y in zip(a, b) if x >= 0 and y >= 0]
    return [x for x, _ in pairs], [y for _, y in pairs]


def _contingency(a: Sequence[int], b: Sequence[int]) -> Dict[Tuple[int, int], int]:
    table: Dict[Tuple[int, int], int] = Counter()
    for x, y in zip(a, b):
        table[(x, y)] += 1
    return table


def _comb2(n: int) -> float:
    return n * (n - 1) / 2.0


def adjusted_rand_index(a: Sequence[int], b: Sequence[int]) -> float:
    """Adjusted Rand Index in [-1, 1]; 1 = identical partitions.

    >>> adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    if len(a) != len(b):
        raise InvalidParameterError("label sequences must align")
    n = len(a)
    if n == 0:
        return 1.0
    table = _contingency(a, b)
    sum_cells = sum(_comb2(v) for v in table.values())
    sum_a = sum(_comb2(v) for v in Counter(a).values())
    sum_b = sum(_comb2(v) for v in Counter(b).values())
    total = _comb2(n)
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:
        return 1.0
    return (sum_cells - expected) / (max_index - expected)


def normalized_mutual_information(
    a: Sequence[int], b: Sequence[int]
) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    if len(a) != len(b):
        raise InvalidParameterError("label sequences must align")
    n = len(a)
    if n == 0:
        return 1.0
    counts_a = Counter(a)
    counts_b = Counter(b)
    table = _contingency(a, b)
    mi = 0.0
    for (x, y), nxy in table.items():
        p_xy = nxy / n
        p_x = counts_a[x] / n
        p_y = counts_b[y] / n
        mi += p_xy * math.log(p_xy / (p_x * p_y))
    h_a = -sum((c / n) * math.log(c / n) for c in counts_a.values())
    h_b = -sum((c / n) * math.log(c / n) for c in counts_b.values())
    denom = (h_a + h_b) / 2.0
    if denom == 0.0:
        return 1.0  # both labellings are single-cluster
    return max(0.0, min(1.0, mi / denom))


def purity(labels: Sequence[int], truth: Sequence[int]) -> float:
    """Fraction of points whose cluster's majority truth class matches."""
    if len(labels) != len(truth):
        raise InvalidParameterError("label sequences must align")
    if not labels:
        return 1.0
    by_cluster: Dict[int, Counter] = {}
    for lb, t in zip(labels, truth):
        by_cluster.setdefault(lb, Counter())[t] += 1
    correct = sum(c.most_common(1)[0][1] for c in by_cluster.values())
    return correct / len(labels)
