"""Volcano-style physical operators.

Every operator exposes an output :class:`~repro.engine.schema.Schema` and an
iterator of row tuples.  Plans are trees of operators; ``explain()`` renders
the tree for tests and debugging (the closest analogue of PostgreSQL's
EXPLAIN for this engine).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.engine.schema import Schema


class PhysicalOperator:
    """Base class; subclasses set ``self.schema`` and implement ``__iter__``."""

    schema: Schema

    def __iter__(self) -> Iterator[tuple]:
        raise NotImplementedError

    def rows(self) -> List[tuple]:
        """Materialize the full output."""
        return list(self)

    # -- explain -----------------------------------------------------------
    def describe(self) -> str:
        """One-line operator description (overridden by subclasses)."""
        return type(self).__name__

    def children(self) -> Tuple["PhysicalOperator", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + "-> " + self.describe()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)
