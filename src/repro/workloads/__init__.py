"""Workload generators and the evaluation query catalog."""

from repro.workloads.checkins import CheckinDataset, brightkite, gowalla
from repro.workloads.tpch import TPCHGenerator, load_tpch

__all__ = [
    "TPCHGenerator",
    "load_tpch",
    "CheckinDataset",
    "brightkite",
    "gowalla",
]
