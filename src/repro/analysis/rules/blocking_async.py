"""SGB008: blocking calls must not be reachable from ``async def``.

The asyncio service runs every coroutine on one event loop thread; a
single ``time.sleep`` or unbounded ``queue.Queue.put`` inside a handler
stalls every in-flight session, defeating the scheduler's admission
control.  This rule BFS-walks the call graph from each ``async def``
body and flags the first blocking leaf reachable without an executor
hop.  ``asyncio.to_thread(fn)`` / ``loop.run_in_executor(None, fn)``
pass ``fn`` without calling it, so no call edge exists through them —
the hop breaks the chain structurally, no special casing needed.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.callgraph import CallSite, format_chain
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

#: Fully-qualified callables that block the calling thread.  Matched
#: against resolved callee names (suffix match on the dotted tail so
#: ``queue.Queue.put`` also matches a subclassed queue type).
BLOCKING_LEAVES = frozenset({
    "time.sleep",
    "queue.Queue.get",
    "queue.Queue.put",
    "queue.Queue.join",
    "queue.SimpleQueue.get",
    "queue.SimpleQueue.put",
    "socket.create_connection",
    "socket.socket.recv",
    "socket.socket.send",
    "socket.socket.sendall",
    "socket.socket.accept",
    "socket.socket.connect",
    "subprocess.run",
    "subprocess.check_output",
    "subprocess.check_call",
    "subprocess.call",
    "threading.Thread.join",
    "threading.Event.wait",
    "threading.Condition.wait",
    "concurrent.futures.Future.result",
    "urllib.request.urlopen",
})

#: Bare names that block regardless of resolution (builtins).
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Repro entry points that hold the statement lock and run a full query:
#: calling them from the event loop blocks it for the query's duration.
BLOCKING_REPRO_METHODS = frozenset({
    "repro.engine.database.Database.execute",
    "repro.engine.database.Database.query",
    "repro.engine.database.Database.insert",
    "repro.engine.database.Database.analyze",
    "repro.engine.database.Database.update_statistics",
})

#: Unresolved-receiver methods (``?get``) are NOT matched: an unknown
#: ``x.get(...)`` is far more often a dict than a queue, and guessing
#: would bury the report in noise.  Typed receivers resolve properly.


def _is_blocking(callee: str) -> bool:
    if callee in BLOCKING_REPRO_METHODS:
        return True
    if callee in BLOCKING_BUILTINS:
        return True
    if callee in BLOCKING_LEAVES:
        return True
    # Full-leaf suffix match so an aliased resolution like
    # ``mypkg.queue.Queue.put`` still counts, while ``asyncio.Queue.put``
    # (a coroutine, not blocking) does not.
    return any(callee.endswith("." + leaf) for leaf in BLOCKING_LEAVES)


@register
class BlockingInAsyncRule(ProjectRule):
    """``async def`` bodies must not reach blocking calls synchronously.

    From every coroutine in the analyzed package, SGB008 walks resolved
    call-graph edges (depth <= 12) looking for known-blocking leaves:
    ``time.sleep``, synchronous ``queue.Queue.get/put/join``, socket and
    subprocess calls, ``Thread.join``, ``Event.wait``, the builtin
    ``open``, and the repro entry points ``Database.execute/query/...``
    that hold the statement lock for a full query.  The finding's
    message shows the offending call chain.

    Fix by hopping to a worker thread — ``await asyncio.to_thread(fn,
    ...)`` or ``loop.run_in_executor`` — which breaks the chain because
    the callable is passed, not called.  Calls whose receiver type
    cannot be resolved are not guessed at.
    """

    id = "SGB008"
    title = "blocking call reachable from async def"

    def check_project(self, project) -> Iterator[Finding]:
        graph = project.graph
        for qualname in sorted(graph.calls):
            sym = project.table.functions.get(qualname)
            if sym is None or not sym.is_async:
                continue
            chain = graph.reachable_path(
                qualname,
                lambda callee, site: _is_blocking(callee),
            )
            if chain is None:
                continue
            first: CallSite = chain[0]
            leaf = chain[-1].callee
            yield self.finding_at(
                first.path, first.node,
                f"async {sym.name}() reaches blocking "
                f"{leaf} without an executor hop "
                f"({format_chain(chain)}) — wrap the first sync step in "
                f"asyncio.to_thread(...)",
            )
