# sgblint: module=repro.engine.fixture_errors_good
"""SGB006 true negatives: taxonomy raises only."""

from repro.errors import ExecutionError, PlanningError


def bind(columns):
    if not columns:
        raise PlanningError("need at least one column")
    if len(columns) > 64:
        raise ExecutionError("too many columns")
    return columns
