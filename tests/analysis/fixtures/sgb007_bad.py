# sgblint: module=repro.engine.fixture_locks_bad
"""SGB007 true positives: a straggler access and an order inversion."""

import threading


class Registry:
    """Three of four ``_items`` accesses hold ``_lock`` — the guard is
    inferred and the fourth access is flagged."""

    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def add(self, key, value):
        with self._lock:
            self._items[key] = value

    def get(self, key):
        with self._lock:
            return self._items.get(key)

    def remove(self, key):
        with self._lock:
            self._items.pop(key, None)

    def peek(self, key):
        return self._items.get(key)  # unguarded read


class Metrics:
    """Two sites take ``_lock`` then ``_metrics_lock``; the third takes
    them reversed and is flagged as an inversion."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._bag = {}

    def record(self, key, value):
        with self._lock:
            with self._metrics_lock:
                self._bag[key] = value

    def snapshot(self):
        with self._lock:
            with self._metrics_lock:
                return dict(self._bag)

    def reset(self):
        with self._metrics_lock:
            with self._lock:  # reversed: can deadlock against record()
                self._bag.clear()
