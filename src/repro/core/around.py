"""Multi-dimensional GROUP AROUND (supervised similarity grouping).

The ICDE 2009 operator family includes grouping *around* user-given
central points; this module lifts that to the multi-dimensional setting of
the main paper: every input point joins the group of its nearest centre
under the chosen metric, optionally only when within a radius ``eps``
(otherwise it is left ungrouped, label ``-1``).

This is one assignment step of K-means with a fixed codebook — but as a
*relational operator*: deterministic, single-pass, and composable with the
rest of the pipeline (the SQL form is
``GROUP BY x, y AROUND ((cx1, cy1), (cx2, cy2), …) [WITHIN r]``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.distance import Metric, resolve_metric
from repro.core.result import ELIMINATED, GroupingResult
from repro.errors import DimensionMismatchError, InvalidParameterError

Point = Tuple[float, ...]


def sgb_around_nd(
    points: Iterable[Sequence[float]],
    centers: Sequence[Sequence[float]],
    eps: Optional[float] = None,
    metric: Union[str, Metric] = "l2",
) -> GroupingResult:
    """Group points around fixed multi-dimensional centres.

    Labels are centre indices; ties go to the earlier-listed centre.  With
    ``eps``, points farther than ``eps`` from every centre get label ``-1``.

    >>> sgb_around_nd([(0, 0.2), (5, 5), (9.4, 0)],
    ...               centers=[(0, 0), (10, 0)], eps=2).labels
    [0, -1, 1]
    """
    m = resolve_metric(metric)
    center_pts: List[Point] = [
        tuple(float(v) for v in c) for c in centers
    ]
    if not center_pts:
        raise InvalidParameterError("GROUP AROUND needs at least one centre")
    dim = len(center_pts[0])
    for c in center_pts[1:]:
        if len(c) != dim:
            raise DimensionMismatchError(
                f"centres have mixed dimensions: {dim} vs {len(c)}"
            )
    if eps is not None and eps < 0:
        raise InvalidParameterError(f"eps must be non-negative, got {eps}")

    labels: List[int] = []
    pts: List[Point] = []
    for p in points:
        pt = tuple(float(v) for v in p)
        if len(pt) != dim:
            raise DimensionMismatchError(
                f"point dimension {len(pt)} != centre dimension {dim}"
            )
        pts.append(pt)
        best = 0
        best_d = m.distance(pt, center_pts[0])
        for i in range(1, len(center_pts)):
            d = m.distance(pt, center_pts[i])
            if d < best_d:
                best_d = d
                best = i
        if eps is not None and best_d > eps:
            labels.append(ELIMINATED)
        else:
            labels.append(best)
    return GroupingResult(labels, pts)
