"""repro.obs — lightweight observability for the SGB engine.

Spans, per-node counter bags, and the plan instrumentation behind
``EXPLAIN ANALYZE``.  See :mod:`repro.obs.metrics` for the counter
vocabulary shared with the streaming ``StreamStats`` and
:mod:`repro.obs.explain` for the plan-level API.
"""

from repro.obs.explain import (
    AnalyzeResult,
    NodeMetrics,
    attach,
    detach,
    plan_metrics,
    render_analyze,
)
from repro.obs.metrics import (
    EXEC_COUNTER_FIELDS,
    SGB_COUNTER_FIELDS,
    MetricBag,
    Span,
    span,
)

__all__ = [
    "AnalyzeResult",
    "EXEC_COUNTER_FIELDS",
    "MetricBag",
    "NodeMetrics",
    "SGB_COUNTER_FIELDS",
    "Span",
    "attach",
    "detach",
    "plan_metrics",
    "render_analyze",
    "span",
]
