"""A from-scratch Guttman R-tree (insert, delete, window query).

This is the "on-the-fly index" of the paper: SGB-All indexes the bounding
rectangles of the *groups* discovered so far (Procedure 5), and SGB-Any
indexes every processed *point* (Procedure 8).  DBSCAN's region queries also
run on this tree (Figure 11 baseline).

The implementation follows Guttman (1984): ChooseLeaf by least enlargement,
quadratic split, AdjustTree upward, and CondenseTree with re-insertion on
deletion.  Entries pair a :class:`~repro.geometry.rectangle.Rect` with an
arbitrary hashable item; items are what queries return.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.geometry.rectangle import Rect


def _mindist(point: Sequence[float], lo: Sequence[float],
             hi: Sequence[float]) -> float:
    """Euclidean distance from a point to an axis-aligned box (0 inside)."""
    total = 0.0
    for v, l, h in zip(point, lo, hi):
        if v < l:
            d = l - v
        elif v > h:
            d = v - h
        else:
            continue
        total += d * d
    # float() wrapper: typeshed types ``float ** float`` as Any (it may
    # be complex for negative bases), which trips warn_return_any.
    return float(total ** 0.5)


def _intersects(alo: Sequence[float], ahi: Sequence[float],
                blo: Sequence[float], bhi: Sequence[float]) -> bool:
    """Closed-boundary box intersection on raw corner tuples (hot path)."""
    if len(alo) == 2:  # common 2-D case, unrolled
        return (alo[0] <= bhi[0] and blo[0] <= ahi[0]
                and alo[1] <= bhi[1] and blo[1] <= ahi[1])
    return all(
        al <= bh and bl <= ah for al, ah, bl, bh in zip(alo, ahi, blo, bhi)
    )


class _Entry:
    """Either a (rect, item) leaf entry or a (rect, child-node) branch entry."""

    __slots__ = ("rect", "item", "child")

    def __init__(self, rect: Rect, item: Any = None,
                 child: Optional["_Node"] = None) -> None:
        self.rect = rect
        self.item = item
        self.child = child


class _Node:
    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.entries: List[_Entry] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> Rect:
        rect = self.entries[0].rect
        for e in self.entries[1:]:
            rect = rect.union(e.rect)
        return rect


class RTree:
    """Dynamic R-tree over (Rect, item) entries.

    Parameters
    ----------
    max_entries:
        Node fanout ``M`` (>= 4).  ``min_entries`` defaults to ``M // 2``.
    """

    def __init__(self, max_entries: int = 8,
                 min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise InvalidParameterError("max_entries must be >= 4")
        self._max = max_entries
        self._min = min_entries if min_entries is not None else max_entries // 2
        if not 1 <= self._min <= self._max // 2:
            raise InvalidParameterError(
                f"min_entries must be in [1, max_entries//2], got {self._min}"
            )
        self._root = _Node(leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @classmethod
    def bulk_load(cls, entries: Iterable[Tuple[Rect, Any]],
                  max_entries: int = 8,
                  min_entries: Optional[int] = None,
                  presort: str = "str") -> "RTree":
        """Build a packed tree from (Rect, item) pairs in one pass.

        ``presort="str"`` (default) uses Sort-Tile-Recursive packing in
        2-D: sort by x-centre, cut into vertical slices, sort each slice
        by y-centre, fill nodes to capacity; higher dimensions fall back
        to a first-dimension sort (still a valid tree, just less tightly
        packed).  ``presort="hilbert"`` orders entries by the Hilbert key
        of their rect centre instead (Morton above 2-D) and packs runs —
        the classic Hilbert-packed R-tree, which also makes leaf order a
        spatial order for cache-friendly sequential probes.  Bulk-built
        trees are ~fully packed either way, so queries touch fewer nodes
        than after one-at-a-time insertion.
        """
        import math

        if presort not in ("str", "hilbert"):
            raise InvalidParameterError(
                f"presort must be 'str' or 'hilbert', got {presort!r}"
            )
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        leaf_entries = [_Entry(rect, item=item) for rect, item in entries]
        if not leaf_entries:
            return tree

        def pack_level(items: List[_Entry], leaf: bool) -> List[_Node]:
            dim = len(items[0].rect.lo)
            if presort == "hilbert":
                from repro.index.hilbert import sort_indices

                centers = [
                    tuple((lv + hv) / 2.0
                          for lv, hv in zip(e.rect.lo, e.rect.hi))
                    for e in items
                ]
                items = [items[i] for i in sort_indices(centers)]
            elif dim >= 2:
                items = sorted(
                    items, key=lambda e: (e.rect.lo[0] + e.rect.hi[0])
                )
                n_slices = max(1, math.ceil(
                    # sgblint: disable-next-line=SGB002 -- STR packing fanout
                    math.sqrt(math.ceil(len(items) / tree._max))
                ))
                slice_size = math.ceil(len(items) / n_slices)
                ordered: List[_Entry] = []
                for s in range(0, len(items), slice_size):
                    chunk = sorted(
                        items[s:s + slice_size],
                        key=lambda e: (e.rect.lo[1] + e.rect.hi[1]),
                    )
                    ordered.extend(chunk)
                items = ordered
            else:
                items = sorted(items, key=lambda e: e.rect.lo[0])
            chunks = [items[s:s + tree._max]
                      for s in range(0, len(items), tree._max)]
            # the trailing chunk may underfill the min-entries invariant;
            # rebalance it against its predecessor
            if len(chunks) >= 2 and len(chunks[-1]) < tree._min:
                merged = chunks[-2] + chunks[-1]
                half = len(merged) // 2
                chunks[-2:] = [merged[:half], merged[half:]]
            nodes: List[_Node] = []
            for chunk in chunks:
                node = _Node(leaf=leaf)
                node.entries = chunk
                for e in node.entries:
                    if e.child is not None:
                        e.child.parent = node
                nodes.append(node)
            return nodes

        level = pack_level(leaf_entries, leaf=True)
        while len(level) > 1:
            parents = pack_level(
                [_Entry(n.mbr(), child=n) for n in level], leaf=False
            )
            level = parents
        tree._root = level[0]
        tree._root.parent = None
        tree._size = len(leaf_entries)
        return tree

    def nearest(self, point: Sequence[float],
                k: int = 1) -> List[Tuple[float, Any]]:
        """k nearest entries to ``point`` by Euclidean rect distance.

        Branch-and-bound best-first search; returns ``(distance, item)``
        pairs in ascending distance order (distance to the entry's
        rectangle, which equals point distance for point entries).
        """
        import heapq

        if k < 1 or not self._size:
            return []
        counter = 0  # tie-breaker so heap never compares nodes
        heap: List[Tuple[float, int, Optional[_Node], Any]] = [
            (0.0, counter, self._root, None)
        ]
        results: List[Tuple[float, Any]] = []
        while heap and len(results) < k:
            dist, _, node, item = heapq.heappop(heap)
            if node is None:  # a concrete entry surfaced
                results.append((dist, item))
                continue
            for e in node.entries:
                d = _mindist(point, e.rect.lo, e.rect.hi)
                counter += 1
                if node.leaf:
                    heapq.heappush(heap, (d, counter, None, e.item))
                else:
                    heapq.heappush(heap, (d, counter, e.child, None))
        return results

    def insert(self, rect: Rect, item: Any) -> None:
        """Insert an entry; duplicate (rect, item) pairs are allowed."""
        self._insert_entry(_Entry(rect, item=item), target_leaf=True)
        self._size += 1

    def delete(self, rect: Rect, item: Any) -> bool:
        """Remove one entry matching ``item`` whose stored rect equals ``rect``.

        Returns True if an entry was removed.  Deletion uses Guttman's
        CondenseTree: underfull nodes are dissolved and their entries
        re-inserted.
        """
        leaf = self._find_leaf(self._root, rect, item)
        if leaf is None:
            return False
        for i, entry in enumerate(leaf.entries):
            if entry.item == item and entry.rect == rect:
                del leaf.entries[i]
                break
        self._condense(leaf)
        # Shrink the tree if the root became a lone internal node.
        while not self._root.leaf and len(self._root.entries) == 1:
            lone = self._root.entries[0].child
            assert lone is not None
            self._root = lone
            self._root.parent = None
        self._size -= 1
        return True

    def update(self, old_rect: Rect, new_rect: Rect, item: Any) -> None:
        """Move an item to a new rectangle (delete + insert).

        SGB-All calls this whenever a group's rectangle changes as members
        join or leave.
        """
        if old_rect == new_rect:
            return
        if not self.delete(old_rect, item):
            raise KeyError(f"item {item!r} with rect {old_rect!r} not in index")
        self.insert(new_rect, item)

    def search(self, window: Rect) -> List[Any]:
        """Window query: items whose rect intersects ``window``."""
        out: List[Any] = []
        wlo, whi = window.lo, window.hi
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for e in node.entries:
                    r = e.rect
                    if _intersects(r.lo, r.hi, wlo, whi):
                        out.append(e.item)
            else:
                for e in node.entries:
                    r = e.rect
                    if _intersects(r.lo, r.hi, wlo, whi):
                        assert e.child is not None
                        stack.append(e.child)
        return out

    def search_with_rects(self, window: Rect) -> List[Tuple[Rect, Any]]:
        out: List[Tuple[Rect, Any]] = []
        wlo, whi = window.lo, window.hi
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                for e in node.entries:
                    r = e.rect
                    if _intersects(r.lo, r.hi, wlo, whi):
                        out.append((r, e.item))
            else:
                for e in node.entries:
                    r = e.rect
                    if _intersects(r.lo, r.hi, wlo, whi):
                        assert e.child is not None
                        stack.append(e.child)
        return out

    def items(self) -> Iterator[Tuple[Rect, Any]]:
        """Iterate every (rect, item) entry in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for e in node.entries:
                if node.leaf:
                    yield e.rect, e.item
                else:
                    assert e.child is not None
                    stack.append(e.child)

    def height(self) -> int:
        """Tree height (1 for a lone leaf root) — exposed for tests."""
        h = 1
        node = self._root
        while not node.leaf:
            first = node.entries[0].child
            assert first is not None
            node = first
            h += 1
        return h

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated.

        Used heavily by the property-based tests: parent rectangles cover
        children, leaves share one depth, and non-root nodes respect the
        min/max entry bounds.
        """
        depths = set()

        def walk(node: _Node, depth: int, is_root: bool) -> None:
            if not is_root:
                assert self._min <= len(node.entries) <= self._max, (
                    f"node has {len(node.entries)} entries"
                )
            else:
                assert len(node.entries) <= self._max
            if node.leaf:
                depths.add(depth)
                return
            for e in node.entries:
                assert e.child is not None
                assert e.child.parent is node
                # Union-on-descent keeps branch rects covering (possibly
                # not tightly) their subtree.
                assert e.rect.contains_rect(e.child.mbr()), (
                    "branch rect does not cover child"
                )
                walk(e.child, depth + 1, is_root=False)

        if self._size:
            walk(self._root, 0, is_root=True)
            assert len(depths) == 1, "leaves at differing depths"

    # ------------------------------------------------------------------
    # insertion internals
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: _Entry, target_leaf: bool) -> None:
        """ChooseLeaf by least enlargement, unioning branch rects on the way
        down (so no upward MBR adjustment is needed unless a node splits)."""
        node = self._root
        rect = entry.rect
        while not node.leaf:
            best = None
            best_key: Tuple[float, float] = (float("inf"), float("inf"))
            for e in node.entries:
                key = (e.rect.enlargement(rect), e.rect.area())
                if key < best_key:
                    best_key = key
                    best = e
            assert best is not None
            best.rect = best.rect.union(rect)
            assert best.child is not None
            node = best.child
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
        if len(node.entries) > self._max:
            self._split_and_adjust(node)

    def _split_and_adjust(self, node: _Node) -> None:
        """Quadratic split of an overfull node, propagating upward."""
        while True:
            group_a, group_b = self._quadratic_split(node.entries)
            node.entries = group_a
            for e in group_a:
                if e.child is not None:
                    e.child.parent = node
            sibling = _Node(leaf=node.leaf)
            sibling.entries = group_b
            for e in group_b:
                if e.child is not None:
                    e.child.parent = sibling

            parent = node.parent
            if parent is None:
                new_root = _Node(leaf=False)
                ea = _Entry(node.mbr(), child=node)
                eb = _Entry(sibling.mbr(), child=sibling)
                new_root.entries = [ea, eb]
                node.parent = new_root
                sibling.parent = new_root
                self._root = new_root
                return
            # Refresh this node's branch rect and add the sibling.
            for e in parent.entries:
                if e.child is node:
                    e.rect = node.mbr()
                    break
            parent.entries.append(_Entry(sibling.mbr(), child=sibling))
            sibling.parent = parent
            if len(parent.entries) > self._max:
                node = parent
                continue
            self._adjust_rects_upward(parent)
            return

    def _quadratic_split(
        self, entries: List[_Entry]
    ) -> Tuple[List[_Entry], List[_Entry]]:
        # PickSeeds: the pair wasting the most area together.
        n = len(entries)
        worst = -1.0
        seed_a, seed_b = 0, 1
        for i in range(n):
            for j in range(i + 1, n):
                waste = (
                    entries[i].rect.union(entries[j].rect).area()
                    - entries[i].rect.area()
                    - entries[j].rect.area()
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        rest = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]

        while rest:
            # Force assignment when one group must absorb the remainder to
            # reach the minimum fill.
            if len(group_a) + len(rest) == self._min:
                group_a.extend(rest)
                break
            if len(group_b) + len(rest) == self._min:
                group_b.extend(rest)
                break
            # PickNext: entry with max preference difference.
            best_idx = 0
            best_diff = -1.0
            for k, e in enumerate(rest):
                d1 = rect_a.enlargement(e.rect)
                d2 = rect_b.enlargement(e.rect)
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = k
            e = rest.pop(best_idx)
            d1 = rect_a.enlargement(e.rect)
            d2 = rect_b.enlargement(e.rect)
            if d1 < d2 or (d1 == d2 and rect_a.area() <= rect_b.area()):
                group_a.append(e)
                rect_a = rect_a.union(e.rect)
            else:
                group_b.append(e)
                rect_b = rect_b.union(e.rect)
        return group_a, group_b

    def _adjust_rects_upward(self, node: _Node) -> None:
        while node.parent is not None:
            parent = node.parent
            for e in parent.entries:
                if e.child is node:
                    updated = node.mbr()
                    if e.rect == updated:
                        return  # nothing changed higher up either
                    e.rect = updated
                    break
            node = parent

    # ------------------------------------------------------------------
    # search / deletion internals
    # ------------------------------------------------------------------
    def _search_entries(self, node: _Node, window: Rect) -> Iterator[_Entry]:
        if node.leaf:
            for e in node.entries:
                if e.rect.intersects(window):
                    yield e
        else:
            for e in node.entries:
                if e.rect.intersects(window):
                    assert e.child is not None
                    yield from self._search_entries(e.child, window)

    def _find_leaf(self, node: _Node, rect: Rect, item: Any) -> Optional[_Node]:
        if node.leaf:
            for e in node.entries:
                if e.item == item and e.rect == rect:
                    return node
            return None
        for e in node.entries:
            if e.rect.intersects(rect):
                assert e.child is not None
                found = self._find_leaf(e.child, rect, item)
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        """Dissolve underfull ancestors, re-inserting their leaf entries.

        Guttman re-inserts orphaned *subtrees* at their original level; we
        take the simpler, equally correct route of re-inserting the leaf
        entries they contain.  Deletions are rare in SGB workloads (only the
        ELIMINATE / FORM-NEW-GROUP semantics and rectangle updates trigger
        them), so the extra constant factor does not show up.
        """
        orphan_leaf_entries: List[_Entry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min:
                parent.entries = [e for e in parent.entries if e.child is not node]
                stack = [node]
                while stack:
                    cur = stack.pop()
                    if cur.leaf:
                        orphan_leaf_entries.extend(cur.entries)
                    else:
                        for e in cur.entries:
                            assert e.child is not None
                            stack.append(e.child)
            else:
                for e in parent.entries:
                    if e.child is node:
                        e.rect = node.mbr()
                        break
            node = parent
        for entry in orphan_leaf_entries:
            entry.child = None
            self._insert_entry(entry, target_leaf=True)
