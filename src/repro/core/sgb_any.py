"""SGB-Any: similarity group-by under the *distance-to-any* semantics (§7).

Groups are the connected components of the ε-neighbourhood graph: a point
belongs to a group if it is within ``ε`` of at least one other member.  When
a new point touches several groups they merge, so no overlap clause exists.

Strategies for ``FindCandidateGroups``:

* :class:`NaiveAnyStrategy` — scan every previously processed point (O(n²));
* :class:`RTreeAnyStrategy` — Procedure 8: an R-tree over processed points
  answers the ε-box window query, L2 candidates are verified exactly, and a
  Union-Find forest tracks created/merged groups (Procedure 9);
* :class:`GridAnyStrategy` — ablation: a uniform hash grid instead of the
  R-tree (same window-query contract).
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro import kernels
from repro.core.distance import Metric, resolve_metric
from repro.core.result import GroupingResult
from repro.dsu.union_find import UnionFind
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.rectangle import Rect
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.obs.metrics import MetricBag
from repro.obs.trace import Tracer, maybe_span

Point = Tuple[float, ...]


class _AnyStrategyBase:
    """Finds ids of previously-seen points within ε of a probe point.

    ``metrics`` (set by the owning operator) receives ``index_probes`` —
    one per :meth:`neighbors` call — and ``candidates`` — raw entries the
    probe returned before exact verification (points scanned, for the
    naive strategy).
    """

    name = "abstract"

    def __init__(self, eps: float, metric: Metric):
        self.eps = eps
        self.metric = metric
        self.metrics: Optional[MetricBag] = None

    def neighbors(self, point: Point) -> List[int]:
        raise NotImplementedError

    def insert(self, point_id: int, point: Point) -> None:
        raise NotImplementedError


class NaiveAnyStrategy(_AnyStrategyBase):
    """All-pairs scan over processed points.

    The scan is one :meth:`~repro.kernels.PointStore.query_all` over the
    backend-native point store — a single vectorized distance expression
    under the numpy backend, the original ``within`` loop otherwise.
    """

    name = "all-pairs"

    def __init__(self, eps: float, metric: Metric):
        super().__init__(eps, metric)
        self._store = kernels.make_point_store()

    def neighbors(self, point: Point) -> List[int]:
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(self._store))
            t0 = time.perf_counter()
            result = self._store.query_all(point, self.eps, self.metric)
            self.metrics.observe(
                "distance_batch_latency", time.perf_counter() - t0
            )
            return result
        return self._store.query_all(point, self.eps, self.metric)

    def insert(self, point_id: int, point: Point) -> None:
        stored = self._store.append(point)
        assert point_id == stored, "ids must be dense and ordered"


class RTreeAnyStrategy(_AnyStrategyBase):
    """Procedure 8: R-tree (``Points_IX``) over processed points.

    The ε-box window query is exact for L∞ (the box *is* the L∞ ball); for
    other metrics the returned set is verified with the actual distance
    (``VerifyPoints`` in the paper).
    """

    name = "index"

    def __init__(self, eps: float, metric: Metric, rtree_max_entries: int = 16):
        super().__init__(eps, metric)
        self._rtree = RTree(max_entries=rtree_max_entries)
        self._store = kernels.make_point_store()

    def neighbors(self, point: Point) -> List[int]:
        window = Rect.eps_box(point, self.eps)
        hits = self._rtree.search_with_rects(window)
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(hits))
        if self.metric.name == "linf":
            return [pid for _, pid in hits]
        # VerifyPoints: one bulk predicate pass over the leaf hits.
        if self.metrics is not None:
            t0 = time.perf_counter()
            result = self._store.query_ids(
                [pid for _, pid in hits], point, self.eps, self.metric
            )
            self.metrics.observe(
                "distance_batch_latency", time.perf_counter() - t0
            )
            return result
        return self._store.query_ids(
            [pid for _, pid in hits], point, self.eps, self.metric
        )

    def insert(self, point_id: int, point: Point) -> None:
        self._rtree.insert(Rect.from_point(point), point_id)
        self._store.append(point)


class GridAnyStrategy(_AnyStrategyBase):
    """Uniform-grid variant (ablation; see DESIGN.md)."""

    name = "grid"

    def __init__(self, eps: float, metric: Metric):
        if eps <= 0:
            raise InvalidParameterError(
                "the grid strategy requires eps > 0 (cell side is eps)"
            )
        super().__init__(eps, metric)
        self._grid = GridIndex(cell_size=eps)
        self._store = kernels.make_point_store()

    def neighbors(self, point: Point) -> List[int]:
        window = Rect.eps_box(point, self.eps)
        # Gather candidate ids from the cell neighbourhood, then run the
        # window-containment + distance verification as one bulk pass.
        ids = self._grid.items_in_cell_range(window)
        # The box tally feeds the candidates counter and the CountingMetric
        # charge; skip it entirely when neither collector is attached.
        count = self.metrics is not None or hasattr(self.metric, "calls")
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        result, n_window = self._store.query_ids_eps_box(
            ids, point, self.eps, self.metric, count=count
        )
        if self.metrics is not None:
            self.metrics.observe(
                "distance_batch_latency", time.perf_counter() - t0
            )
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", n_window)
        return result

    def insert(self, point_id: int, point: Point) -> None:
        self._grid.insert(point, point_id)
        self._store.append(point)


_STRATEGIES = {
    "all-pairs": NaiveAnyStrategy,
    "allpairs": NaiveAnyStrategy,
    "naive": NaiveAnyStrategy,
    "index": RTreeAnyStrategy,
    "indexed": RTreeAnyStrategy,
    "rtree": RTreeAnyStrategy,
    "grid": GridAnyStrategy,
}


class SGBAnyOperator:
    """Streaming SGB-Any operator (Procedure 7).

    Each arriving point is unioned with every ε-neighbour already seen; the
    Union-Find forest merges groups on contact (Procedure 9,
    ``MergeGroupsInsert``), so the final components are exactly the connected
    components of the ε-graph regardless of input order.
    """

    def __init__(
        self,
        eps: float,
        metric: Union[str, Metric] = "l2",
        strategy: str = "index",
        rtree_max_entries: int = 16,
        count_distance_computations: bool = False,
        metrics: Optional[MetricBag] = None,
        tracer: Optional[Tracer] = None,
    ):
        if eps < 0:
            raise InvalidParameterError(f"eps must be non-negative, got {eps}")
        self.eps = float(eps)
        self.metric = resolve_metric(metric)
        self.metrics = metrics
        self.tracer = tracer
        if count_distance_computations or metrics is not None:
            from repro.core.stats import CountingMetric

            if not hasattr(self.metric, "calls"):
                self.metric = CountingMetric(self.metric)
        key = strategy.strip().lower()
        try:
            strategy_cls = _STRATEGIES[key]
        except KeyError:
            raise InvalidParameterError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{sorted(set(_STRATEGIES))}"
            ) from None
        if strategy_cls is GridAnyStrategy and self.eps == 0:
            # eps == 0 degenerates to equality grouping, which the grid
            # cannot express (the cell side is eps); the naive scan gives
            # identical components, so quietly take that path instead.
            strategy_cls = NaiveAnyStrategy
        if strategy_cls is RTreeAnyStrategy:
            self._strategy: _AnyStrategyBase = RTreeAnyStrategy(
                self.eps, self.metric, rtree_max_entries
            )
        else:
            self._strategy = strategy_cls(self.eps, self.metric)
        self._strategy.metrics = metrics
        self._uf = UnionFind()
        self._points: List[Point] = []
        self._dim: Optional[int] = None
        self._finalized = False

    @property
    def strategy_name(self) -> str:
        return self._strategy.name

    @property
    def distance_computations(self) -> int:
        """Similarity-predicate evaluations so far (requires
        ``count_distance_computations=True``)."""
        calls = getattr(self.metric, "calls", None)
        if calls is None:
            raise RuntimeError(
                "construct the operator with count_distance_computations="
                "True to collect this statistic"
            )
        return calls

    def add(self, point: Sequence[float]) -> None:
        if self._finalized:
            raise RuntimeError("operator already finalized")
        pt = tuple(float(v) for v in point)
        if self._dim is None:
            self._dim = len(pt)
            if self._dim < 1:
                raise InvalidParameterError("points must have >= 1 dimension")
        elif len(pt) != self._dim:
            raise DimensionMismatchError(
                f"point dimension {len(pt)} != {self._dim}"
            )
        pid = len(self._points)
        self._points.append(pt)
        self._uf.add(pid)
        bag = self.metrics
        if bag is not None:
            bag.incr("points")
            bag.incr("groups_created")
            before = self._uf.n_components
            t0 = time.perf_counter()
            neighbors = self._strategy.neighbors(pt)
            bag.observe("probe_latency", time.perf_counter() - t0)
        else:
            neighbors = self._strategy.neighbors(pt)
        for nb in neighbors:
            self._uf.union(pid, nb)
        if bag is not None:
            bag.incr("groups_merged", before - self._uf.n_components)
        self._strategy.insert(pid, pt)

    def add_many(self, points: Iterable[Sequence[float]]) -> "SGBAnyOperator":
        with maybe_span(self.tracer, "ingest",
                        strategy=self.strategy_name) as sp:
            n0 = len(self._points)
            for p in points:
                self.add(p)
            sp.set(points=len(self._points) - n0)
        return self

    def finalize(self) -> GroupingResult:
        if self._finalized:
            raise RuntimeError("operator already finalized")
        self._finalized = True
        if self.metrics is not None:
            self.metrics.incr(
                "distance_computations", getattr(self.metric, "calls", 0)
            )
        with maybe_span(self.tracer, "finalize",
                        points=len(self._points)) as sp:
            labels: List[int] = []
            root_to_label: dict = {}
            for pid in range(len(self._points)):
                root = self._uf.find(pid)
                if root not in root_to_label:
                    root_to_label[root] = len(root_to_label)
                labels.append(root_to_label[root])
            sp.set(groups=len(root_to_label))
        return GroupingResult(labels, self._points)
