"""SGB011: worker payloads must round-trip through the fold-back.

``repro.core.parallel`` ships observability state across the process
boundary as an ``ObsPayload`` dict: workers *produce* keys
(``payload["counters"] = ...``) and the parent *consumes* them in
``fold_obs_payload``.  The two sides are only linked by convention, so
adding a producer key without teaching the fold about it silently drops
that telemetry for every parallel query — no error, just missing data.
This rule diffs produced keys against consumed keys, per module.

The second check closes SGB005's one-call-deep blind spot: SGB005 flags
lambdas/closures passed *directly* to ``pool.submit``, but not a
module-level wrapper that *returns* one, nor a nested function resolved
through a variable.  Here the submitted callable is resolved through
the symbol table: nested functions are flagged outright, and
module-level callees whose return expressions contain a ``lambda`` or a
locally-defined function are flagged too — both pickle-bomb the pool at
runtime on the first submit.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.astutil import str_const
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

#: Only modules in this family carry the fold-back contract.
_SCOPE_PREFIX = "repro.core.parallel"

#: The consumer side of the contract.
_FOLD_FUNCTION = "fold_obs_payload"

#: Annotation tail marking a producer dict.
_PAYLOAD_TYPE = "ObsPayload"

_DISPATCH_METHODS = frozenset({"submit", "map"})


@register
class FoldbackSafetyRule(ProjectRule):
    """Every produced ``ObsPayload`` key needs a consumer in
    ``fold_obs_payload``, and submitted callables must pickle.

    Producer keys are string-keyed writes to variables annotated
    ``ObsPayload`` (``payload["counters"] = ...``); consumer keys are
    ``payload.get("k")``, ``payload["k"]`` reads, and ``"k" in payload``
    tests inside ``fold_obs_payload``.  A produced key with no consumer
    is telemetry that crosses the process boundary and evaporates.

    The picklability half resolves each ``pool.submit(fn, ...)`` /
    ``pool.map(fn, ...)`` callable through the project symbol table:
    nested functions cannot pickle (flagged), and module-level callees
    that *return* a lambda or locally-defined function poison the
    arguments of the next submit one call deeper than SGB005 can see.
    """

    id = "SGB011"
    title = "fold-back contract violation in parallel worker payload"

    def check_project(self, project) -> Iterator[Finding]:
        for module_name in sorted(project.package_contexts):
            if not module_name.startswith(_SCOPE_PREFIX):
                continue
            ctx = project.package_contexts[module_name]
            yield from self._check_payload_keys(project, module_name, ctx)
            yield from self._check_submitted_callables(
                project, module_name, ctx)

    # -- produced vs consumed keys -----------------------------------------
    def _check_payload_keys(self, project, module_name,
                            ctx) -> Iterator[Finding]:
        produced = self._produced_keys(ctx.tree)
        if not produced:
            return
        consumed = self._consumed_keys(project, module_name)
        if consumed is None:
            return  # no fold function in scope: different contract
        for key, node in sorted(produced.items()):
            if key in consumed:
                continue
            yield self.finding_at(
                ctx.path, node,
                f"worker payload key {key!r} is produced here but never "
                f"consumed by {_FOLD_FUNCTION}() — the telemetry is "
                f"dropped after the process hop; fold it or remove it",
            )

    def _produced_keys(self, tree: ast.AST) -> Dict[str, ast.AST]:
        payload_vars = self._payload_vars(tree)
        produced: Dict[str, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    key = self._payload_subscript_key(target, payload_vars)
                    if key is not None:
                        produced.setdefault(key, target)
            elif isinstance(node, ast.Call):
                # payload.setdefault("k", ...) also produces.
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "setdefault"
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in payload_vars
                        and node.args):
                    key = str_const(node.args[0])
                    if key is not None:
                        produced.setdefault(key, node)
        return produced

    def _payload_vars(self, tree: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                ann = node.annotation
                tail = None
                if isinstance(ann, ast.Name):
                    tail = ann.id
                elif isinstance(ann, ast.Attribute):
                    tail = ann.attr
                if tail == _PAYLOAD_TYPE:
                    out.add(node.target.id)
        return out

    @staticmethod
    def _payload_subscript_key(target: ast.AST,
                               payload_vars: Set[str]) -> Optional[str]:
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in payload_vars):
            return str_const(target.slice)
        return None

    def _consumed_keys(self, project,
                       module_name: str) -> Optional[Set[str]]:
        """Keys read by ``fold_obs_payload`` in this module family —
        checked across the family so a fixture module pairing its own
        producer/fold stays self-contained."""
        fold_sym = None
        mod = project.table.modules.get(module_name)
        if mod is not None and _FOLD_FUNCTION in mod.functions:
            fold_sym = mod.functions[_FOLD_FUNCTION]
        if fold_sym is None:
            base = project.table.modules.get(_SCOPE_PREFIX)
            if base is not None:
                fold_sym = base.functions.get(_FOLD_FUNCTION)
        if fold_sym is None:
            return None
        consumed: Set[str] = set()
        for node in ast.walk(fold_sym.node):
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("get", "pop")
                        and node.args):
                    key = str_const(node.args[0])
                    if key is not None:
                        consumed.add(key)
            elif isinstance(node, ast.Subscript):
                key = str_const(node.slice)
                if key is not None:
                    consumed.add(key)
            elif isinstance(node, ast.Compare):
                if any(isinstance(op, (ast.In, ast.NotIn))
                       for op in node.ops):
                    key = str_const(node.left)
                    if key is not None:
                        consumed.add(key)
        return consumed

    # -- one-call-deep picklability ----------------------------------------
    def _check_submitted_callables(self, project, module_name,
                                   ctx) -> Iterator[Finding]:
        for caller_q in sorted(project.table.functions):
            caller = project.table.functions[caller_q]
            if caller.module != module_name or caller.nested:
                continue
            yield from self._check_caller(project, module_name, ctx,
                                          caller)

    def _check_caller(self, project, module_name, ctx,
                      caller) -> Iterator[Finding]:
        for node in ast.walk(caller.node):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DISPATCH_METHODS):
                continue
            if not node.args:
                continue
            fn_arg = node.args[0]
            if not isinstance(fn_arg, ast.Name):
                continue  # direct lambdas are SGB005's case
            # A local def shadows any module-level name of the same
            # spelling, so try the enclosing scope first.
            resolved = f"{caller.qualname}.<locals>.{fn_arg.id}"
            sym = project.table.functions.get(resolved)
            if sym is None:
                resolved = project.table.resolve(module_name, fn_arg.id)
                sym = (project.table.functions.get(resolved)
                       if resolved else None)
            if sym is None:
                continue
            if sym.nested:
                yield self.finding_at(
                    ctx.path, node,
                    f"submitted callable {fn_arg.id!r} is a nested "
                    f"function — it cannot pickle, so the pool dies on "
                    f"first dispatch; move it to module level",
                )
                continue
            poison = self._returns_unpicklable(sym.node)
            if poison is not None:
                yield self.finding_at(
                    ctx.path, node,
                    f"submitted callable {fn_arg.id!r} returns a "
                    f"{poison} (see {sym.qualname}) — the result, or "
                    f"anything closing over it, will not pickle back "
                    f"from the worker",
                )

    @staticmethod
    def _returns_unpicklable(func_node: ast.AST) -> Optional[str]:
        local_defs: Set[str] = set()
        for node in ast.walk(func_node):
            if node is func_node:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs.add(node.name)
        for node in ast.walk(func_node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Lambda):
                    return "lambda"
                if isinstance(sub, ast.Name) and sub.id in local_defs:
                    return "locally-defined function"
        return None
