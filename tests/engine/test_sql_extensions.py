"""Tests for the extended SQL surface: LEFT JOIN, CASE, UNION."""

import pytest

from repro.engine.database import Database
from repro.errors import ParseError, PlanningError


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE a (x int, nm text)")
    d.execute("CREATE TABLE b (x int, v float)")
    d.execute("INSERT INTO a VALUES (1,'one'),(2,'two'),(3,'three')")
    d.execute("INSERT INTO b VALUES (1, 1.5), (1, 2.5), (3, 9.0)")
    return d


class TestLeftJoin:
    def test_unmatched_rows_null_extended(self, db):
        res = db.query(
            "SELECT nm, v FROM a LEFT JOIN b ON a.x = b.x ORDER BY nm, v"
        )
        assert res.rows == [
            ("one", 1.5), ("one", 2.5), ("three", 9.0), ("two", None),
        ]

    def test_left_outer_spelling(self, db):
        res = db.query(
            "SELECT count(*) FROM a LEFT OUTER JOIN b ON a.x = b.x"
        )
        assert res.scalar() == 4

    def test_anti_join_pattern(self, db):
        res = db.query(
            "SELECT nm FROM a LEFT JOIN b ON a.x = b.x WHERE v IS NULL"
        )
        assert res.rows == [("two",)]

    def test_where_on_right_not_pushed_below_join(self, db):
        # WHERE applies after null-extension: rows with v NULL must be kept
        # by `v IS NULL`, which a pre-join pushdown would break.
        res = db.query(
            "SELECT nm FROM a LEFT JOIN b ON a.x = b.x "
            "WHERE v IS NULL OR v > 2"
        )
        assert sorted(r[0] for r in res) == ["one", "three", "two"]

    def test_non_equi_left_join(self, db):
        res = db.query(
            "SELECT nm FROM a LEFT JOIN b ON a.x > b.x WHERE v IS NULL"
        )
        assert res.rows == [("one",)]

    def test_residual_in_on_condition(self, db):
        # ON has equi + residual: residual failures still null-extend
        res = db.query(
            "SELECT nm, v FROM a LEFT JOIN b ON a.x = b.x AND v > 2 "
            "ORDER BY nm, v"
        )
        assert res.rows == [
            ("one", 2.5), ("three", 9.0), ("two", None),
        ]

    def test_plan_uses_hash_left_join_for_equi(self, db):
        plan = db.explain("SELECT nm FROM a LEFT JOIN b ON a.x = b.x")
        assert "HashLeftJoin" in plan

    def test_left_join_then_inner_join(self, db):
        db.execute("CREATE TABLE c (x int, lab text)")
        db.execute("INSERT INTO c VALUES (1, 'c1'), (2, 'c2'), (3, 'c3')")
        res = db.query(
            "SELECT nm, lab, v FROM a LEFT JOIN b ON a.x = b.x "
            "JOIN c ON a.x = c.x WHERE a.x = 2"
        )
        assert res.rows == [("two", "c2", None)]


class TestCase:
    def test_searched_case(self, db):
        res = db.query(
            "SELECT CASE WHEN x > 2 THEN 'big' WHEN x = 2 THEN 'mid' "
            "ELSE 'small' END FROM a ORDER BY x"
        )
        assert [r[0] for r in res] == ["small", "mid", "big"]

    def test_simple_case_desugars(self, db):
        res = db.query(
            "SELECT CASE nm WHEN 'one' THEN 1 WHEN 'two' THEN 2 END "
            "FROM a ORDER BY x"
        )
        assert [r[0] for r in res] == [1, 2, None]

    def test_missing_else_yields_null(self, db):
        res = db.query("SELECT CASE WHEN x > 99 THEN 1 END FROM a")
        assert all(r[0] is None for r in res)

    def test_case_without_when_rejected(self, db):
        with pytest.raises(ParseError):
            db.query("SELECT CASE END FROM a")
        with pytest.raises(ParseError, match="WHEN"):
            db.query("SELECT CASE x END FROM a")

    def test_case_inside_aggregate(self, db):
        res = db.query(
            "SELECT sum(CASE WHEN v > 2 THEN 1 ELSE 0 END) FROM b"
        )
        assert res.scalar() == 2

    def test_aggregate_inside_case(self, db):
        res = db.query(
            "SELECT CASE WHEN count(*) > 2 THEN 'many' ELSE 'few' END "
            "FROM b"
        )
        assert res.scalar() == "many"

    def test_case_in_where(self, db):
        res = db.query(
            "SELECT nm FROM a WHERE CASE WHEN x = 1 THEN true "
            "ELSE false END"
        )
        assert res.rows == [("one",)]


class TestUnion:
    def test_union_distinct(self, db):
        res = db.query("SELECT x FROM a UNION SELECT x FROM b")
        assert sorted(r[0] for r in res) == [1, 2, 3]

    def test_union_all_keeps_duplicates(self, db):
        res = db.query("SELECT x FROM a UNION ALL SELECT x FROM b")
        assert sorted(r[0] for r in res) == [1, 1, 1, 2, 3, 3]

    def test_union_chain(self, db):
        res = db.query(
            "SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 1"
        )
        assert sorted(r[0] for r in res) == [1, 1, 2]

    def test_union_arity_mismatch(self, db):
        with pytest.raises(PlanningError, match="column"):
            db.query("SELECT x FROM a UNION SELECT x, v FROM b")

    def test_union_in_from_subquery(self, db):
        res = db.query(
            "SELECT count(*) FROM "
            "(SELECT x FROM a UNION ALL SELECT x FROM b) AS u"
        )
        assert res.scalar() == 6

    def test_union_in_in_subquery(self, db):
        res = db.query(
            "SELECT nm FROM a WHERE x IN "
            "(SELECT 1 UNION SELECT 3)"
        )
        assert sorted(r[0] for r in res) == ["one", "three"]

    def test_union_column_names_from_first_branch(self, db):
        res = db.query("SELECT x AS first_name FROM a UNION SELECT x FROM b")
        assert res.columns == ["first_name"]

    def test_explain_union(self, db):
        plan = db.explain("SELECT x FROM a UNION SELECT x FROM b")
        assert "Concat" in plan and "Distinct" in plan
