"""Benchmark harness: regenerates every table and figure of the paper."""

from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import Report, fit_loglog_slope, normalize_points, time_call

__all__ = [
    "EXPERIMENTS",
    "Report",
    "time_call",
    "normalize_points",
    "fit_loglog_slope",
]
