"""Regression: eliminated points (any negative label) must be excluded
from every group statistic, matching the ``label < 0`` convention used by
the engine executor and the quality metrics."""

import pytest

from repro.core.api import sgb_all
from repro.core.result import ELIMINATED, GroupingResult


def make_result():
    # labels use both -1 (ELIMINATED) and another negative sentinel
    labels = [0, ELIMINATED, 1, 0, -2, 1, 2]
    points = [(float(i), 0.0) for i in range(len(labels))]
    return GroupingResult(labels, points)


class TestEliminatedExclusion:
    def test_n_groups_excludes_negative_labels(self):
        assert make_result().n_groups == 3

    def test_n_eliminated_counts_all_negative_labels(self):
        res = make_result()
        assert res.n_eliminated == 2
        assert res.eliminated_indices() == [1, 4]

    def test_groups_and_sizes_skip_eliminated(self):
        res = make_result()
        assert res.groups() == {0: [0, 3], 1: [2, 5], 2: [6]}
        assert res.group_sizes() == [2, 2, 1]

    def test_sizes_plus_eliminated_cover_all_points(self):
        res = make_result()
        assert sum(res.group_sizes()) + res.n_eliminated == res.n_points

    def test_group_points_skips_eliminated(self):
        res = make_result()
        members = [p for pts in res.group_points().values() for p in pts]
        assert (1.0, 0.0) not in members
        assert (4.0, 0.0) not in members

    def test_relabeled_normalizes_negative_labels(self):
        relab = make_result().relabeled()
        assert relab.labels == [0, ELIMINATED, 1, 0, ELIMINATED, 1, 2]
        assert relab.n_groups == 3
        assert relab.n_eliminated == 2

    def test_partition_ignores_eliminated(self):
        res = make_result()
        assert frozenset([1]) not in res.partition()
        assert frozenset([4]) not in res.partition()


class TestEndToEndEliminate:
    def test_eliminate_run_stats_are_consistent(self):
        # (1, 0) is within eps of both singleton cliques -> eliminated
        pts = [(0.0, 0.0), (2.0, 0.0), (1.0, 0.0)]
        res = sgb_all(pts, 1.0, metric="linf", on_overlap="eliminate")
        assert res.labels[2] < 0
        assert res.n_groups == 2
        assert res.n_eliminated == 1
        assert res.group_sizes() == [1, 1]
        assert sum(res.group_sizes()) + res.n_eliminated == res.n_points

    def test_all_eliminated(self):
        res = GroupingResult([ELIMINATED, -3], [(0.0,), (1.0,)])
        assert res.n_groups == 0
        assert res.group_sizes() == []
        assert res.partition() == ()
        assert res.n_eliminated == 2


def test_misaligned_inputs_rejected():
    with pytest.raises(ValueError):
        GroupingResult([0], [(0.0,), (1.0,)])
