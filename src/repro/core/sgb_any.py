"""SGB-Any: similarity group-by under the *distance-to-any* semantics (§7).

Groups are the connected components of the ε-neighbourhood graph: a point
belongs to a group if it is within ``ε`` of at least one other member.  When
a new point touches several groups they merge, so no overlap clause exists.

Strategies for ``FindCandidateGroups``:

* :class:`NaiveAnyStrategy` — scan every previously processed point (O(n²));
* :class:`RTreeAnyStrategy` — Procedure 8: an R-tree over processed points
  answers the ε-box window query, L2 candidates are verified exactly, and a
  Union-Find forest tracks created/merged groups (Procedure 9);
* :class:`GridAnyStrategy` — ablation: a uniform hash grid instead of the
  R-tree (same window-query contract).

Because SGB-Any groups are the connected components of the ε-graph, they
do not depend on the order points are processed in — which admits a
second family of *batch* strategies that defer all probing to
``finalize``: build a static index over the complete point set once,
then answer every point's ε-neighborhood as vectorized blocks:

* :class:`KDTreeAnyStrategy` — a bucketed k-d tree; each leaf's members
  are verified against the leaf's ε-expanded window candidates in one
  :func:`repro.kernels.batch_eps_neighbors` call;
* :class:`STRBulkAnyStrategy` — an STR bulk-loaded (packed) R-tree
  probed in Hilbert order with bulk leaf verification;
* :class:`HilbertGridAnyStrategy` — a Hilbert-bulk-built uniform grid
  probed in curve order.

All strategies, incremental and batch, produce bit-identical group
memberships; the batch ones exist purely to make the probe phase faster
(see ``benchmarks/bench_index.py``).
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro import kernels
from repro.core.distance import Metric, resolve_metric
from repro.core.result import GroupingResult
from repro.dsu.union_find import UnionFind
from repro.errors import DimensionMismatchError, InvalidParameterError
from repro.geometry.rectangle import Rect
from repro.index.grid import GridIndex
from repro.index.rtree import RTree
from repro.obs.metrics import MetricBag
from repro.obs.trace import Tracer, maybe_span

Point = Tuple[float, ...]


class _AnyStrategyBase:
    """Finds ids of previously-seen points within ε of a probe point.

    ``metrics`` (set by the owning operator) receives ``index_probes`` —
    one per :meth:`neighbors` call — and ``candidates`` — raw entries the
    probe returned before exact verification (points scanned, for the
    naive strategy).
    """

    name = "abstract"
    #: Batch strategies defer all probing to ``finalize`` — the operator
    #: skips the per-point ``neighbors`` call and drains
    #: :meth:`batch_neighbors` once every point has been inserted.
    batch = False

    def __init__(self, eps: float, metric: Metric):
        self.eps = eps
        self.metric = metric
        self.metrics: Optional[MetricBag] = None

    def neighbors(self, point: Point) -> List[int]:
        raise NotImplementedError

    def insert(self, point_id: int, point: Point) -> None:
        raise NotImplementedError

    def batch_neighbors(self) -> "Iterable[Tuple[int, List[int]]]":
        """Yield ``(point_id, ε-neighbor ids)`` over all inserted points.

        Only meaningful on batch strategies (``batch = True``).  Neighbor
        lists are computed against the *complete* point set (self
        excluded); since SGB-Any components are order-independent, the
        resulting union-find forest matches the incremental strategies'
        exactly.
        """
        raise NotImplementedError


class NaiveAnyStrategy(_AnyStrategyBase):
    """All-pairs scan over processed points.

    The scan is one :meth:`~repro.kernels.PointStore.query_all` over the
    backend-native point store — a single vectorized distance expression
    under the numpy backend, the original ``within`` loop otherwise.
    """

    name = "all-pairs"

    def __init__(self, eps: float, metric: Metric):
        super().__init__(eps, metric)
        self._store = kernels.make_point_store()

    def neighbors(self, point: Point) -> List[int]:
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(self._store))
            t0 = time.perf_counter()
            result = self._store.query_all(point, self.eps, self.metric)
            self.metrics.observe(
                "distance_batch_latency", time.perf_counter() - t0
            )
            return result
        return self._store.query_all(point, self.eps, self.metric)

    def insert(self, point_id: int, point: Point) -> None:
        stored = self._store.append(point)
        assert point_id == stored, "ids must be dense and ordered"


class RTreeAnyStrategy(_AnyStrategyBase):
    """Procedure 8: R-tree (``Points_IX``) over processed points.

    The ε-box window query is exact for L∞ (the box *is* the L∞ ball); for
    other metrics the returned set is verified with the actual distance
    (``VerifyPoints`` in the paper).
    """

    name = "index"

    def __init__(self, eps: float, metric: Metric, rtree_max_entries: int = 16):
        super().__init__(eps, metric)
        self._rtree = RTree(max_entries=rtree_max_entries)
        self._store = kernels.make_point_store()

    def neighbors(self, point: Point) -> List[int]:
        window = Rect.eps_box(point, self.eps)
        hits = self._rtree.search_with_rects(window)
        if self.metrics is not None:
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", len(hits))
        if self.metric.name == "linf":
            return [pid for _, pid in hits]
        # VerifyPoints: one bulk predicate pass over the leaf hits.
        if self.metrics is not None:
            t0 = time.perf_counter()
            result = self._store.query_ids(
                [pid for _, pid in hits], point, self.eps, self.metric
            )
            self.metrics.observe(
                "distance_batch_latency", time.perf_counter() - t0
            )
            return result
        return self._store.query_ids(
            [pid for _, pid in hits], point, self.eps, self.metric
        )

    def insert(self, point_id: int, point: Point) -> None:
        self._rtree.insert(Rect.from_point(point), point_id)
        self._store.append(point)


class GridAnyStrategy(_AnyStrategyBase):
    """Uniform-grid variant (ablation; see DESIGN.md)."""

    name = "grid"

    def __init__(self, eps: float, metric: Metric):
        if eps <= 0:
            raise InvalidParameterError(
                "the grid strategy requires eps > 0 (cell side is eps)"
            )
        super().__init__(eps, metric)
        self._grid = GridIndex(cell_size=eps)
        self._store = kernels.make_point_store()

    def neighbors(self, point: Point) -> List[int]:
        window = Rect.eps_box(point, self.eps)
        # Gather candidate ids from the cell neighbourhood, then run the
        # window-containment + distance verification as one bulk pass.
        ids = self._grid.items_in_cell_range(window)
        # The box tally feeds the candidates counter and the CountingMetric
        # charge; skip it entirely when neither collector is attached.
        count = self.metrics is not None or hasattr(self.metric, "calls")
        t0 = time.perf_counter() if self.metrics is not None else 0.0
        result, n_window = self._store.query_ids_eps_box(
            ids, point, self.eps, self.metric, count=count
        )
        if self.metrics is not None:
            self.metrics.observe(
                "distance_batch_latency", time.perf_counter() - t0
            )
            self.metrics.incr("index_probes")
            self.metrics.incr("candidates", n_window)
        return result

    def insert(self, point_id: int, point: Point) -> None:
        self._grid.insert(point, point_id)
        self._store.append(point)


class _BatchAnyStrategyBase(_AnyStrategyBase):
    """Shared spool for the deferred (batch) strategies.

    ``insert`` only appends; the index is built and probed in one pass
    when the operator finalizes and drains :meth:`batch_neighbors`.
    """

    batch = True

    def __init__(self, eps: float, metric: Metric):
        super().__init__(eps, metric)
        self._points: List[Point] = []

    def insert(self, point_id: int, point: Point) -> None:
        assert point_id == len(self._points), "ids must be dense and ordered"
        self._points.append(point)

    def neighbors(self, point: Point) -> List[int]:
        raise RuntimeError(
            f"strategy {self.name!r} is batch-only; probes run at finalize"
        )


class KDTreeAnyStrategy(_BatchAnyStrategyBase):
    """Static bucketed k-d tree with leaf-grouped vectorized probes.

    The tree is built once over all points (median splits, O(n log n)).
    Probing walks the leaves in split order — already a spatial order —
    and for each leaf gathers the candidates of the leaf MBR's ε-expanded
    window *once*, then verifies every leaf member against that one
    candidate block with a single :func:`repro.kernels.batch_eps_neighbors`
    call.  Under the numpy backend that is one broadcasted distance
    expression per leaf instead of one python-level probe per point.
    """

    name = "kdtree"

    def __init__(self, eps: float, metric: Metric, leaf_size: int = 32):
        super().__init__(eps, metric)
        self._leaf_size = leaf_size

    def batch_neighbors(self) -> Iterator[Tuple[int, List[int]]]:
        from repro.index.kdtree import KDTree

        pts = self._points
        tree = KDTree.build(pts, leaf_size=self._leaf_size)
        eps = self.eps
        metric = self.metric
        bag = self.metrics
        for leaf_ids, lo, hi in tree.leaves():
            wlo = tuple(v - eps for v in lo)
            whi = tuple(v + eps for v in hi)
            cand = tree.window_ids(wlo, whi)
            cand_pts = [pts[i] for i in cand]
            probes = [pts[i] for i in leaf_ids]
            if bag is not None:
                bag.incr("index_probes", len(leaf_ids))
                bag.incr("candidates", len(cand) * len(leaf_ids))
                t0 = time.perf_counter()
                hits = kernels.batch_eps_neighbors(cand_pts, probes,
                                                   eps, metric)
                bag.observe(
                    "distance_batch_latency", time.perf_counter() - t0
                )
            else:
                hits = kernels.batch_eps_neighbors(cand_pts, probes,
                                                   eps, metric)
            for pid, local in zip(leaf_ids, hits):
                yield pid, [cand[j] for j in local if cand[j] != pid]


class STRBulkAnyStrategy(_BatchAnyStrategyBase):
    """STR bulk-loaded R-tree probed in Hilbert order.

    The packed tree replaces n Guttman inserts with one O(n log n)
    build; probes then run in space-filling-curve order so consecutive
    window queries descend largely the same subtrees, and each window's
    leaf hits are verified with one vectorized pass over the point
    store (the ``VerifyPoints`` step of Procedure 8).
    """

    name = "rtree-bulk"

    def __init__(self, eps: float, metric: Metric,
                 rtree_max_entries: int = 16):
        super().__init__(eps, metric)
        self._max_entries = rtree_max_entries

    def batch_neighbors(self) -> Iterator[Tuple[int, List[int]]]:
        from repro.index.hilbert import sort_indices

        pts = self._points
        tree = RTree.bulk_load(
            [(Rect.from_point(p), i) for i, p in enumerate(pts)],
            max_entries=self._max_entries,
        )
        store = kernels.make_point_store()
        for p in pts:
            store.append(p)
        eps = self.eps
        metric = self.metric
        linf = metric.name == "linf"
        bag = self.metrics
        for pid in sort_indices(pts):
            point = pts[pid]
            hits = tree.search(Rect.eps_box(point, eps))
            if bag is not None:
                bag.incr("index_probes")
                bag.incr("candidates", len(hits))
            if linf:
                yield pid, [i for i in hits if i != pid]
                continue
            if bag is not None:
                t0 = time.perf_counter()
                verified = store.query_ids(hits, point, eps, metric)
                bag.observe(
                    "distance_batch_latency", time.perf_counter() - t0
                )
            else:
                verified = store.query_ids(hits, point, eps, metric)
            yield pid, [i for i in verified if i != pid]


class HilbertGridAnyStrategy(_BatchAnyStrategyBase):
    """Hilbert-bulk-built uniform grid probed in curve order.

    Same cell-neighbourhood probe as :class:`GridAnyStrategy`, but the
    grid's buckets are allocated in space-filling-curve order and the
    probe loop walks the same order, so the gather phase revisits
    adjacent buckets instead of hopping across the hash table.
    """

    name = "hilbert-grid"

    def __init__(self, eps: float, metric: Metric):
        if eps <= 0:
            raise InvalidParameterError(
                "the hilbert-grid strategy requires eps > 0 (cell side is eps)"
            )
        super().__init__(eps, metric)

    def batch_neighbors(self) -> Iterator[Tuple[int, List[int]]]:
        from repro.index.hilbert import sort_indices

        pts = self._points
        grid = GridIndex.bulk_build(
            [(p, i) for i, p in enumerate(pts)],
            cell_size=self.eps, presort="hilbert",
        )
        store = kernels.make_point_store()
        for p in pts:
            store.append(p)
        eps = self.eps
        metric = self.metric
        bag = self.metrics
        count = bag is not None or hasattr(metric, "calls")
        for pid in sort_indices(pts):
            point = pts[pid]
            ids = grid.items_in_cell_range(Rect.eps_box(point, eps))
            if bag is not None:
                t0 = time.perf_counter()
                result, n_window = store.query_ids_eps_box(
                    ids, point, eps, metric, count=count
                )
                bag.observe(
                    "distance_batch_latency", time.perf_counter() - t0
                )
                bag.incr("index_probes")
                bag.incr("candidates", n_window)
            else:
                result, _ = store.query_ids_eps_box(
                    ids, point, eps, metric, count=count
                )
            yield pid, [i for i in result if i != pid]


_STRATEGIES = {
    "all-pairs": NaiveAnyStrategy,
    "allpairs": NaiveAnyStrategy,
    "naive": NaiveAnyStrategy,
    "index": RTreeAnyStrategy,
    "indexed": RTreeAnyStrategy,
    "rtree": RTreeAnyStrategy,
    "grid": GridAnyStrategy,
    "kdtree": KDTreeAnyStrategy,
    "kd-tree": KDTreeAnyStrategy,
    "rtree-bulk": STRBulkAnyStrategy,
    "str": STRBulkAnyStrategy,
    "hilbert-grid": HilbertGridAnyStrategy,
}


class SGBAnyOperator:
    """Streaming SGB-Any operator (Procedure 7).

    Each arriving point is unioned with every ε-neighbour already seen; the
    Union-Find forest merges groups on contact (Procedure 9,
    ``MergeGroupsInsert``), so the final components are exactly the connected
    components of the ε-graph regardless of input order.
    """

    def __init__(
        self,
        eps: float,
        metric: Union[str, Metric] = "l2",
        strategy: str = "index",
        rtree_max_entries: int = 16,
        count_distance_computations: bool = False,
        metrics: Optional[MetricBag] = None,
        tracer: Optional[Tracer] = None,
    ):
        if eps < 0:
            raise InvalidParameterError(f"eps must be non-negative, got {eps}")
        self.eps = float(eps)
        self.metric = resolve_metric(metric)
        self.metrics = metrics
        self.tracer = tracer
        if count_distance_computations or metrics is not None:
            from repro.core.stats import CountingMetric

            if not hasattr(self.metric, "calls"):
                self.metric = CountingMetric(self.metric)
        key = strategy.strip().lower()
        try:
            strategy_cls = _STRATEGIES[key]
        except KeyError:
            raise InvalidParameterError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{sorted(set(_STRATEGIES))}"
            ) from None
        if (strategy_cls in (GridAnyStrategy, HilbertGridAnyStrategy)
                and self.eps == 0):
            # eps == 0 degenerates to equality grouping, which the grid
            # cannot express (the cell side is eps); the naive scan gives
            # identical components, so quietly take that path instead.
            strategy_cls = NaiveAnyStrategy
        if strategy_cls is RTreeAnyStrategy:
            self._strategy: _AnyStrategyBase = RTreeAnyStrategy(
                self.eps, self.metric, rtree_max_entries
            )
        elif strategy_cls is STRBulkAnyStrategy:
            self._strategy = STRBulkAnyStrategy(
                self.eps, self.metric, rtree_max_entries
            )
        else:
            self._strategy = strategy_cls(self.eps, self.metric)
        self._strategy.metrics = metrics
        self._uf = UnionFind()
        self._points: List[Point] = []
        self._dim: Optional[int] = None
        self._finalized = False

    @property
    def strategy_name(self) -> str:
        return self._strategy.name

    @property
    def distance_computations(self) -> int:
        """Similarity-predicate evaluations so far (requires
        ``count_distance_computations=True``)."""
        calls = getattr(self.metric, "calls", None)
        if calls is None:
            raise RuntimeError(
                "construct the operator with count_distance_computations="
                "True to collect this statistic"
            )
        return calls

    def add(self, point: Sequence[float]) -> None:
        if self._finalized:
            raise RuntimeError("operator already finalized")
        pt = tuple(float(v) for v in point)
        if self._dim is None:
            self._dim = len(pt)
            if self._dim < 1:
                raise InvalidParameterError("points must have >= 1 dimension")
        elif len(pt) != self._dim:
            raise DimensionMismatchError(
                f"point dimension {len(pt)} != {self._dim}"
            )
        pid = len(self._points)
        self._points.append(pt)
        self._uf.add(pid)
        bag = self.metrics
        if bag is not None:
            bag.incr("points")
            bag.incr("groups_created")
        if self._strategy.batch:
            # Deferred strategy: probes run once, at finalize, over the
            # complete point set (components are order-independent).
            self._strategy.insert(pid, pt)
            return
        if bag is not None:
            before = self._uf.n_components
            t0 = time.perf_counter()
            neighbors = self._strategy.neighbors(pt)
            bag.observe("probe_latency", time.perf_counter() - t0)
        else:
            neighbors = self._strategy.neighbors(pt)
        for nb in neighbors:
            self._uf.union(pid, nb)
        if bag is not None:
            bag.incr("groups_merged", before - self._uf.n_components)
        self._strategy.insert(pid, pt)

    def add_many(self, points: Iterable[Sequence[float]]) -> "SGBAnyOperator":
        with maybe_span(self.tracer, "ingest",
                        strategy=self.strategy_name) as sp:
            n0 = len(self._points)
            for p in points:
                self.add(p)
            sp.set(points=len(self._points) - n0)
        return self

    def finalize(self) -> GroupingResult:
        if self._finalized:
            raise RuntimeError("operator already finalized")
        self._finalized = True
        if self._strategy.batch and self._points:
            self._run_batch_probe()
        if self.metrics is not None:
            self.metrics.incr(
                "distance_computations", getattr(self.metric, "calls", 0)
            )
        with maybe_span(self.tracer, "finalize",
                        points=len(self._points)) as sp:
            labels: List[int] = []
            root_to_label: dict = {}
            for pid in range(len(self._points)):
                root = self._uf.find(pid)
                if root not in root_to_label:
                    root_to_label[root] = len(root_to_label)
                labels.append(root_to_label[root])
            sp.set(groups=len(root_to_label))
        return GroupingResult(labels, self._points)

    def _run_batch_probe(self) -> None:
        """Drain a batch strategy's deferred probe pass into the forest."""
        bag = self.metrics
        uf = self._uf
        with maybe_span(self.tracer, "probe_batch",
                        strategy=self.strategy_name,
                        points=len(self._points)):
            if bag is not None:
                before = uf.n_components
                t0 = time.perf_counter()
            for pid, neighbors in self._strategy.batch_neighbors():
                for nb in neighbors:
                    uf.union(pid, nb)
            if bag is not None:
                bag.observe("probe_latency", time.perf_counter() - t0)
                bag.incr("groups_merged", before - uf.n_components)
