"""CSV import/export tests."""

import datetime as dt
import io

import pytest

from repro.engine.database import Database
from repro.engine.io import dump_csv, infer_column_types, load_csv
from repro.errors import InvalidParameterError


class TestInference:
    def test_types(self):
        rows = [
            ["1", "1.5", "2020-01-01", "true", "abc"],
            ["2", "3", "2021-12-31", "false", "1.5x"],
        ]
        assert infer_column_types(rows) == [
            "int", "float", "date", "bool", "text",
        ]

    def test_empty_cells_ignored(self):
        rows = [["1", ""], ["", "2.5"]]
        assert infer_column_types(rows) == ["int", "float"]

    def test_all_empty_is_text(self):
        assert infer_column_types([["", ""]]) == ["text", "text"]

    def test_no_rows(self):
        assert infer_column_types([]) == []


class TestLoadCSV:
    def test_with_header_and_inference(self):
        db = Database()
        text = "id,score,day\n1,2.5,2020-01-01\n2,,2020-06-15\n"
        load_csv(db, "t", io.StringIO(text))
        res = db.query("SELECT * FROM t ORDER BY id")
        assert res.columns == ["id", "score", "day"]
        assert res.rows == [
            (1, 2.5, dt.date(2020, 1, 1)),
            (2, None, dt.date(2020, 6, 15)),
        ]

    def test_without_header(self):
        db = Database()
        load_csv(db, "t", io.StringIO("1,a\n2,b\n"), header=False)
        res = db.query("SELECT col1, col2 FROM t ORDER BY col1")
        assert res.rows == [(1, "a"), (2, "b")]

    def test_explicit_schema(self):
        db = Database()
        load_csv(
            db, "t", io.StringIO("v\n1\n2\n"),
            columns=[("v", "float")],
        )
        assert db.query("SELECT * FROM t").rows == [(1.0,), (2.0,)]

    def test_schema_arity_mismatch(self):
        db = Database()
        with pytest.raises(InvalidParameterError, match="columns"):
            load_csv(db, "t", io.StringIO("a,b\n1,2\n"),
                     columns=[("a", "int")])

    def test_ragged_row_rejected(self):
        db = Database()
        with pytest.raises(InvalidParameterError, match="cells"):
            load_csv(db, "t", io.StringIO("a,b\n1\n"))

    def test_empty_input(self):
        db = Database()
        with pytest.raises(InvalidParameterError, match="empty"):
            load_csv(db, "t", io.StringIO(""))

    def test_from_file_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x,y\n1,2\n3,4\n")
        db = Database()
        load_csv(db, "pts", str(path))
        assert db.query("SELECT count(*) FROM pts").scalar() == 2

    def test_loaded_data_supports_sgb(self):
        db = Database()
        load_csv(db, "pts",
                 io.StringIO("x,y\n1,1\n1.5,1.2\n9,9\n"))
        res = db.query(
            "SELECT count(*) FROM pts GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert sorted(r[0] for r in res) == [1, 2]


class TestDumpCSV:
    def test_roundtrip(self):
        db = Database()
        db.execute("CREATE TABLE t (a int, b text, d date)")
        db.execute("INSERT INTO t VALUES (1, 'x', '2020-01-01'), "
                   "(2, NULL, NULL)")
        text = dump_csv(db.query("SELECT * FROM t ORDER BY a"))
        assert text == "a,b,d\n1,x,2020-01-01\n2,,\n"
        # load it back
        db2 = Database()
        load_csv(db2, "t2", io.StringIO(text))
        assert db2.query("SELECT a FROM t2 ORDER BY a").column("a") == [1, 2]

    def test_to_file(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (7)")
        path = tmp_path / "out.csv"
        assert dump_csv(db.query("SELECT * FROM t"), str(path)) is None
        assert path.read_text() == "a\n7\n"

    def test_to_stream(self):
        db = Database()
        db.execute("CREATE TABLE t (a int)")
        db.execute("INSERT INTO t VALUES (7)")
        buf = io.StringIO()
        dump_csv(db.query("SELECT * FROM t"), buf)
        assert buf.getvalue() == "a\n7\n"

    def test_custom_delimiter(self):
        db = Database()
        db.execute("CREATE TABLE t (a int, b int)")
        db.execute("INSERT INTO t VALUES (1, 2)")
        text = dump_csv(db.query("SELECT * FROM t"), delimiter=";")
        assert text == "a;b\n1;2\n"
