"""Counters for the incremental SGB engines.

Every streaming engine owns one cumulative :class:`StreamStats`; the
:class:`~repro.streaming.micro_batch.MicroBatcher` snapshots it around each
flushed batch and stores the per-batch delta in a :class:`BatchRecord`.
Counters are plain ints (plus a float wall-clock) so diffing two snapshots
is exact and cheap.

The counters mirror what the paper's evaluation reports for the batch
operators: group bookkeeping (created / merged / dropped), index work
(window probes and the candidates they return), and elimination/deferral
accounting for the overlap clauses.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.metrics import SGB_COUNTER_FIELDS

#: Counter attributes, in reporting order — the shared SGB counter
#: vocabulary, so streaming snapshots and batch ``MetricBag`` exports use
#: the same field names.
_FIELDS = SGB_COUNTER_FIELDS


class StreamStats:
    """Cumulative counters for one streaming engine.

    Attributes
    ----------
    points:
        Points ingested so far.
    groups_created:
        Groups opened (SGB-Any: one per point, pre-merge; SGB-All: new
        cliques started).
    groups_merged:
        SGB-Any component merges (a union that reduced the component count).
    groups_dropped:
        SGB-All groups emptied by ELIMINATE / FORM-NEW-GROUP overlap
        processing.
    eliminated / deferred:
        Points dropped or deferred by the overlap clause.
    index_probes:
        ε-box window queries issued against the neighbor/group index.
    candidates:
        Entries returned by those window queries before exact verification.
    distance_computations:
        Similarity-predicate evaluations (only populated when the engine
        was built with ``count_distances=True``).
    wall_time_s:
        Ingest wall time attributed by the micro-batcher.
    """

    __slots__ = _FIELDS + ("wall_time_s",)

    def __init__(self) -> None:
        for f in _FIELDS:
            setattr(self, f, 0)
        self.wall_time_s = 0.0

    # ------------------------------------------------------------------
    def copy(self) -> "StreamStats":
        out = StreamStats()
        for f in _FIELDS:
            setattr(out, f, getattr(self, f))
        out.wall_time_s = self.wall_time_s
        return out

    def __sub__(self, earlier: "StreamStats") -> "StreamStats":
        """Delta between two snapshots of the same engine's counters."""
        out = StreamStats()
        for f in _FIELDS:
            setattr(out, f, getattr(self, f) - getattr(earlier, f))
        out.wall_time_s = self.wall_time_s - earlier.wall_time_s
        return out

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {f: getattr(self, f) for f in _FIELDS}
        out["wall_time_s"] = self.wall_time_s
        return out

    def span_attrs(self) -> Dict[str, float]:
        """Non-zero counters only — compact attributes for a trace span.

        A micro-batch delta is mostly zeros (e.g. SGB-Any never drops a
        group); tagging spans with just the counters that moved keeps the
        exported trace files small.
        """
        out: Dict[str, float] = {
            f: getattr(self, f) for f in _FIELDS if getattr(self, f)
        }
        if self.wall_time_s:
            out["wall_ms"] = round(self.wall_time_s * 1000.0, 3)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        body = ", ".join(f"{f}={getattr(self, f)}" for f in _FIELDS)
        return f"StreamStats({body}, wall_time_s={self.wall_time_s:.6f})"


class BatchRecord:
    """Per-micro-batch accounting kept by the MicroBatcher."""

    __slots__ = ("seq", "size", "stats")

    def __init__(self, seq: int, size: int, stats: StreamStats):
        self.seq = seq
        self.size = size
        self.stats = stats

    @property
    def wall_time_s(self) -> float:
        return self.stats.wall_time_s

    def as_dict(self) -> Dict[str, float]:
        out = self.stats.as_dict()
        out["seq"] = self.seq
        out["size"] = self.size
        return out

    def __repr__(self) -> str:
        return (
            f"BatchRecord(seq={self.seq}, size={self.size}, "
            f"wall_time_s={self.wall_time_s:.6f})"
        )


def total_of(records: List[BatchRecord]) -> StreamStats:
    """Sum the deltas of ``records`` back into one cumulative StreamStats."""
    out = StreamStats()
    for rec in records:
        for f in _FIELDS:
            setattr(out, f, getattr(out, f) + getattr(rec.stats, f))
        out.wall_time_s += rec.stats.wall_time_s
    return out
