#!/usr/bin/env python
"""Kernel-backend and partition-parallel speedup curves.

Two sweeps over Fig. 9-style uniform workloads (normalized 2-D points,
L2, the grid strategy):

* **backend** — the same single-partition SGB-Any run under every
  available kernel backend (``python`` always; ``numpy`` when installed).
  Memberships must agree exactly; the interesting number is the numpy
  speedup at n >= 20k.
* **parallel** — one multi-partition workload executed with
  ``parallel`` ∈ {1, 2, 4} worker processes through the array API's
  ``partitions=`` path.  Labels are bit-identical by construction (the
  per-partition blake2b seeds do not depend on where a partition runs),
  so the sweep asserts that and reports the wall-clock curve.  Speedup is
  bounded by the CPUs actually present — the payload's ``stamp`` records
  ``cpu_count`` so a 1-core CI box reporting ~1x is legible.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
        [--n N] [--eps E] [--mode any|all] [--partitions P]
        [--workers 1,2,4] [--out BENCH_parallel.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kernels  # noqa: E402
from repro.bench.experiments import uniform_points  # noqa: E402
from repro.bench.harness import bench_stamp  # noqa: E402
from repro.core.api import sgb_all, sgb_any  # noqa: E402


def _run(mode, points, eps, seed=0, **kwargs):
    if mode == "any":
        return sgb_any(points, eps, strategy="grid", **kwargs)
    return sgb_all(points, eps, strategy="index", tiebreak="random",
                   seed=seed, **kwargs)


def backend_sweep(mode: str, n: int, eps: float):
    """Same workload under every available backend; memberships must agree."""
    points = uniform_points(n)
    rows = []
    partitions = {}
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            t0 = time.perf_counter()
            result = _run(mode, points, eps)
            elapsed = time.perf_counter() - t0
        partitions[backend] = result.partition()
        rows.append({
            "backend": backend,
            "mode": mode,
            "n": n,
            "eps": eps,
            "n_groups": result.n_groups,
            "wall_time_s": elapsed,
        })
        print(f"[backend {backend:>6}] n={n}: {elapsed:8.3f} s "
              f"({result.n_groups} groups)")
    agree = len(set(map(repr, partitions.values()))) == 1
    base = next(r for r in rows if r["backend"] == "python")["wall_time_s"]
    for row in rows:
        row["speedup_vs_python"] = base / row["wall_time_s"]
        row["partition_agrees"] = agree
    return rows, agree


def parallel_sweep(mode: str, n: int, eps: float, n_partitions: int,
                   workers_list):
    """One multi-partition workload across worker counts; labels must be
    bit-identical to the serial run."""
    points = uniform_points(n)
    keys = [i % n_partitions for i in range(n)]
    rows = []
    baseline_labels = None
    base_time = None
    for workers in workers_list:
        t0 = time.perf_counter()
        result = _run(mode, points, eps, partitions=keys, parallel=workers)
        elapsed = time.perf_counter() - t0
        if baseline_labels is None:
            baseline_labels = result.labels
            base_time = elapsed
        identical = result.labels == baseline_labels
        rows.append({
            "mode": mode,
            "n": n,
            "eps": eps,
            "n_partitions": n_partitions,
            "workers": workers,
            "n_groups": result.n_groups,
            "wall_time_s": elapsed,
            "speedup_vs_serial": base_time / elapsed,
            "labels_identical_to_serial": identical,
        })
        print(f"[parallel w={workers}] n={n} P={n_partitions}: "
              f"{elapsed:8.3f} s speedup {base_time / elapsed:5.2f}x "
              f"identical={identical}")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--n", type=int, default=None,
                        help="points for both sweeps (default 20000; "
                             "2000 with --quick)")
    # uniform_points spans a 20x20 square; eps=1.0 matches the eps=0.05
    # unit-square density regime of Figure 9's mid-range.
    parser.add_argument("--eps", type=float, default=1.0)
    parser.add_argument("--mode", choices=("any", "all"), default="any")
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--workers", type=str, default="1,2,4",
                        help="comma-separated worker counts")
    parser.add_argument("--out", type=str, default=None,
                        help="output JSON path (default: BENCH_parallel.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    n = args.n or (2000 if args.quick else 20000)
    workers_list = [int(w) for w in args.workers.split(",")]
    out_path = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    )

    backend_rows, agree = backend_sweep(args.mode, n, args.eps)
    parallel_rows = parallel_sweep(args.mode, n, args.eps, args.partitions,
                                   workers_list)

    numpy_row = next(
        (r for r in backend_rows if r["backend"] == "numpy"), None
    )
    best_parallel = max(r["speedup_vs_serial"] for r in parallel_rows)
    payload = {
        "benchmark": "kernel-backends-and-partition-parallel",
        "stamp": bench_stamp(),
        "config": {
            "n": n,
            "eps": args.eps,
            "mode": args.mode,
            "n_partitions": args.partitions,
            "workers": workers_list,
            "quick": args.quick,
        },
        "backend_results": backend_rows,
        "parallel_results": parallel_rows,
        "summary": {
            "numpy_speedup_vs_python":
                numpy_row["speedup_vs_python"] if numpy_row else None,
            "best_parallel_speedup": best_parallel,
            "memberships_agree": agree,
            "labels_identical": all(
                r["labels_identical_to_serial"] for r in parallel_rows
            ),
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    if not agree:
        print("ERROR: backends disagree on the grouping", file=sys.stderr)
        return 1
    if not payload["summary"]["labels_identical"]:
        print("ERROR: parallel labels diverged from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
