"""Distance metric tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distance import (
    L1,
    L2,
    LINF,
    MinkowskiMetric,
    resolve_metric,
)
from repro.errors import DimensionMismatchError, InvalidParameterError

coord = st.floats(-1000, 1000, allow_nan=False)
point2 = st.tuples(coord, coord)


class TestEuclidean:
    def test_known_values(self):
        assert L2.distance((0, 0), (3, 4)) == 5.0
        assert L2.distance((1, 1), (1, 1)) == 0.0

    def test_within_matches_distance(self):
        assert L2.within((0, 0), (3, 4), 5.0)
        assert not L2.within((0, 0), (3, 4), 4.999)

    def test_within_early_exit_correct(self):
        # the early-exit optimization must not change the answer
        p = (0, 0, 0, 0)
        q = (10, 0.1, 0.1, 0.1)
        assert L2.within(p, q, 10.1)
        assert not L2.within(p, q, 10.0)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            L2.distance((1, 2), (1, 2, 3))
        with pytest.raises(DimensionMismatchError):
            L2.within((1,), (1, 2), 1)


class TestChebyshev:
    def test_known_values(self):
        assert LINF.distance((0, 0), (3, 4)) == 4.0
        assert LINF.distance((1, 5), (4, 6)) == 3.0

    def test_within(self):
        assert LINF.within((0, 0), (3, 3), 3)
        assert not LINF.within((0, 0), (3, 3.0001), 3)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            LINF.distance((1, 2), (1,))


class TestMinkowski:
    def test_l1_manhattan(self):
        assert L1.distance((0, 0), (3, 4)) == 7.0

    def test_p_must_be_geq_one(self):
        with pytest.raises(InvalidParameterError):
            MinkowskiMetric(0.5)

    def test_p2_equals_euclidean(self):
        m = MinkowskiMetric(2)
        assert m.distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_within_known_values(self):
        assert L1.within((0, 0), (3, 4), 7.0)
        assert not L1.within((0, 0), (3, 4), 6.999)
        m3 = MinkowskiMetric(3)
        assert m3.within((0, 0), (1, 1), 2 ** (1 / 3))

    def test_within_early_exit_correct(self):
        # the powered-sum early exit must not change the answer away from
        # the representability boundary (within compares Σ|a-b|^p with
        # eps^p, exact up to one ulp like EuclideanMetric's squared form)
        m3 = MinkowskiMetric(3)
        p = (0, 0, 0, 0)
        q = (10, 0.1, 0.1, 0.1)
        d = m3.distance(p, q)
        assert not m3.within(p, q, 10.0)
        assert m3.within(p, q, d * (1 + 1e-12))
        assert not m3.within(p, q, d * (1 - 1e-12))

    def test_within_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            L1.within((1, 2), (1, 2, 3), 1.0)

    @pytest.mark.parametrize("order", [1, 1.5, 2, 3, 7])
    @given(p=point2, q=point2, eps=st.floats(0, 100))
    def test_within_matches_distance(self, order, p, q, eps):
        m = MinkowskiMetric(order)
        d = m.distance(p, q)
        if abs(d - eps) <= 1e-9 * max(1.0, eps):
            return  # powered-sum vs rooted compare may differ by one ulp
        assert m.within(p, q, eps) == (d <= eps)


class TestResolve:
    @pytest.mark.parametrize("name,expected", [
        ("l2", L2), ("L2", L2), ("euclidean", L2), ("ltwo", L2),
        ("linf", LINF), ("chebyshev", LINF), ("max", LINF),
        ("l1", L1), ("manhattan", L1),
    ])
    def test_names(self, name, expected):
        assert resolve_metric(name) is expected

    def test_passthrough(self):
        assert resolve_metric(L2) is L2

    def test_unknown(self):
        with pytest.raises(InvalidParameterError):
            resolve_metric("hamming")

    def test_equality_by_name(self):
        assert MinkowskiMetric(2).name == "l2"
        assert L2 == MinkowskiMetric(2)


class TestMetricAxioms:
    @given(point2, point2)
    def test_symmetry(self, p, q):
        for m in (L2, LINF, L1):
            assert m.distance(p, q) == pytest.approx(m.distance(q, p))

    @given(point2, point2)
    def test_non_negativity_and_identity(self, p, q):
        for m in (L2, LINF, L1):
            assert m.distance(p, q) >= 0
            assert m.distance(p, p) == 0

    @given(point2, point2, point2)
    def test_triangle_inequality(self, p, q, r):
        for m in (L2, LINF, L1):
            assert (
                m.distance(p, r)
                <= m.distance(p, q) + m.distance(q, r) + 1e-9
            )

    @given(point2, point2)
    def test_linf_lower_bounds_l2(self, p, q):
        """L∞ <= L2 <= L1 — the ordering the filter logic assumes."""
        assert LINF.distance(p, q) <= L2.distance(p, q) + 1e-9
        assert L2.distance(p, q) <= L1.distance(p, q) + 1e-9

    @given(point2, point2, st.floats(0, 100, allow_nan=False))
    def test_within_consistent_with_distance(self, p, q, eps):
        for m in (L2, LINF):
            assert m.within(p, q, eps) == (m.distance(p, q) <= eps)
