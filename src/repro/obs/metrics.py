"""Counter and span primitives for operator observability.

The paper's evaluation (§8) argues for SGB through measured operator
internals — distance computations avoided, index probes issued, groups
touched — so the engine needs a uniform way to collect exactly those
numbers.  This module provides the two primitives everything else is built
on:

* :class:`MetricBag` — a per-node bag of monotonic counters and wall-time
  accumulators.  Operators hold ``metrics=None`` by default and guard every
  counting site with ``if bag is not None``, so the instrumentation costs
  nothing unless a caller (EXPLAIN ANALYZE, a benchmark harness) attaches a
  bag.
* :func:`span` / :class:`Span` — a context-manager timer that adds its
  elapsed wall time to a named accumulator in a bag.

:data:`SGB_COUNTER_FIELDS` is the canonical counter vocabulary, shared by
the streaming engines' :class:`~repro.streaming.stats.StreamStats` (which
imports its field tuple from here) and the batch
:class:`~repro.core.sgb_all.SGBAllOperator` /
:class:`~repro.core.sgb_any.SGBAnyOperator`, so per-batch stream deltas and
per-query EXPLAIN ANALYZE rows report the same names for the same things.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.hist import HistogramTimer, LatencyHistogram


#: Canonical SGB counter names, in reporting order.  Shared between the
#: streaming StreamStats and the batch operators' MetricBag entries:
#:
#: points
#:     Points ingested by the operator.
#: groups_created
#:     Groups opened (SGB-Any: one per point, pre-merge; SGB-All: new
#:     cliques started, including FORM-NEW-GROUP regrouping passes).
#: groups_merged
#:     SGB-Any component merges (unions that reduced the component count).
#: groups_dropped
#:     SGB-All groups emptied by ELIMINATE / FORM-NEW-GROUP overlap
#:     processing.
#: eliminated / deferred
#:     Points dropped or deferred by the ON-OVERLAP clause.
#: index_probes
#:     FindCloseGroups / neighbor probes issued (R-tree or grid window
#:     queries for the indexed strategies; one per scan for the naive ones).
#: candidates
#:     Entries returned by those probes before exact verification (groups
#:     scanned, for the linear strategies).
#: distance_computations
#:     Similarity-predicate evaluations.  Attaching a MetricBag wraps the
#:     operator's metric in a CountingMetric automatically.
SGB_COUNTER_FIELDS = (
    "points",
    "groups_created",
    "groups_merged",
    "groups_dropped",
    "eliminated",
    "deferred",
    "index_probes",
    "candidates",
    "distance_computations",
)

#: Executor-level counters (maintained by plan nodes, not the core
#: operators).  ``rows_skipped_null`` counts input rows discarded because a
#: grouping attribute was NULL — a deliberate divergence from vanilla GROUP
#: BY's single-NULL-group semantics (see docs/sql_dialect.md).
#: ``rows_spooled`` counts rows materialized into a blocking node's tuple
#: store (the SGB §8.2 spool) — the "rows materialized" column of
#: EXPLAIN ANALYZE's resource accounting.
EXEC_COUNTER_FIELDS = ("rows_skipped_null", "rows_spooled")


class MetricBag:
    """Monotonic counters plus named wall-time accumulators.

    >>> bag = MetricBag()
    >>> bag.incr("index_probes")
    >>> bag.incr("candidates", 4)
    >>> bag.get("candidates")
    4
    >>> with bag.span("finalize"):
    ...     pass
    >>> bag.time("finalize") >= 0.0
    True

    Latency *distributions* (per-probe, per-micro-batch, ...) go into
    log-bucketed :class:`~repro.obs.hist.LatencyHistogram` entries via
    :meth:`observe` / :meth:`hist_timer`; they merge across bags (and
    worker processes) exactly like the flat counters.
    """

    __slots__ = ("counters", "timings", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timings: Dict[str, float] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    # -- counters ----------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        if name.endswith("_s"):
            # ``as_dict()`` suffixes timings with ``_s``; a counter named
            # ``foo_s`` would silently collide with the ``foo`` timing.
            raise ValueError(
                f"counter name {name!r} ends with '_s', which is reserved "
                f"for timing keys in as_dict()"
            )
        self.counters[name] = self.counters.get(name, 0) + n

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    # -- timers ------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def time(self, name: str, default: float = 0.0) -> float:
        return self.timings.get(name, default)

    def span(self, name: str) -> "Span":
        return Span(self, name)

    # -- histograms --------------------------------------------------------
    def histogram(self, name: str) -> LatencyHistogram:
        """Get-or-create the named latency histogram."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into the named histogram."""
        self.histogram(name).observe(seconds)

    def hist_timer(self, name: str) -> HistogramTimer:
        """``with bag.hist_timer("probe_latency"):`` — one observation."""
        return self.histogram(name).timer()

    # -- aggregation -------------------------------------------------------
    def merge(self, other: "MetricBag") -> "MetricBag":
        """Fold ``other``'s counters, timings, and histograms into this."""
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, seconds in other.timings.items():
            self.add_time(name, seconds)
        for name, hist in other.histograms.items():
            self.histogram(name).merge(hist)
        return self

    def as_dict(self) -> Dict[str, float]:
        """Flat dict: counters verbatim, timings suffixed with ``_s``.

        The ``_s`` suffix is a reserved namespace: :meth:`incr` rejects
        counter names ending in ``_s``, so a timing can never be shadowed
        by (or shadow) a counter.  Histograms are *not* flattened here —
        see :meth:`histogram_summaries` and the Prometheus exporter.
        """
        out: Dict[str, float] = dict(self.counters)
        for name, seconds in self.timings.items():
            out[f"{name}_s"] = seconds
        return out

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-histogram ``{count, sum_s, p50_s, p95_s, p99_s, max_s}``."""
        return {
            name: hist.as_dict() for name, hist in self.histograms.items()
        }

    def __bool__(self) -> bool:
        return bool(self.counters or self.timings or self.histograms)

    def __repr__(self) -> str:
        body = ", ".join(
            f"{k}={v}" for k, v in sorted(self.as_dict().items())
        )
        return f"MetricBag({body})"


class Span:
    """Context manager adding its elapsed wall time to a bag entry.

    Single-use at a time: nesting ``__enter__`` on one instance raises
    (two overlapping timers sharing one ``_t0`` would corrupt both
    measurements), and exiting an unentered Span raises instead of
    relying on an ``assert`` that ``python -O`` strips — which would
    have surfaced as a ``TypeError`` on the float subtraction.
    Sequential reuse of a finished Span is fine.
    """

    __slots__ = ("_bag", "_name", "_t0")

    def __init__(self, bag: MetricBag, name: str):
        self._bag = bag
        self._name = name
        self._t0: Optional[float] = None

    def __enter__(self) -> "Span":
        if self._t0 is not None:
            raise RuntimeError(
                f"Span {self._name!r} is not re-entrant; it is already "
                f"entered — create a new Span instead"
            )
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._t0 is None:
            raise RuntimeError(
                f"Span {self._name!r} exited without being entered"
            )
        self._bag.add_time(self._name, time.perf_counter() - self._t0)
        self._t0 = None


def span(bag: Optional[MetricBag], name: str):
    """``with span(bag, "phase"):`` — a no-op when ``bag`` is None."""
    if bag is None:
        return _NULL_SPAN
    return Span(bag, name)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()
