# sgblint: module=repro.core.fixture_metrics_good
"""SGB003 true negatives: lower-snake Prometheus-safe names."""


def record(bag, tracer):
    bag.incr("candidate_pairs")
    bag.observe("probe_latency", 0.5)
    bag.add_time("finalize", 0.1)
    with tracer.span("micro_batch"):
        pass
