"""TPC-H-like data generator (the paper's Table 2 substrate).

Generates the subset of the TPC-H schema the evaluation queries touch —
``customer``, ``orders``, ``lineitem``, ``supplier``, ``partsupp``,
``part``, ``nation`` — with the same inter-table ratios as dbgen but scaled
down by ``row_scale`` (default 1/1000) so a Python engine sweeps scale
factors in minutes.  The paper's claims are about *relative* runtimes and
growth with SF, which the scaled ratios preserve (see DESIGN.md,
"Substitutions").

Everything is deterministic per (scale_factor, seed).
"""

from __future__ import annotations

import datetime as _dt
import random
from typing import Dict, List, Sequence, Tuple

from repro.engine.database import Database
from repro.errors import InvalidParameterError
from repro.workloads.distributions import skewed_price

_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]

_PART_COLORS = [
    "green", "blue", "red", "ivory", "salmon", "almond", "azure",
    "chocolate", "smoke", "peach",
]
_PART_NOUNS = ["steel", "copper", "brass", "tin", "nickel"]

# Canonical TPC-H per-SF cardinalities, scaled by ``row_scale``.
_BASE_ROWS = {
    "customer": 150_000,
    "orders": 1_500_000,
    "supplier": 10_000,
    "part": 200_000,
}
_LINEITEMS_PER_ORDER = (1, 7)  # uniform, avg 4 — matches dbgen
_PARTSUPP_PER_PART = 4

_DATE_LO = _dt.date(1992, 1, 1)
_DATE_HI = _dt.date(1998, 8, 2)


class TPCHGenerator:
    """Deterministic TPC-H-like generator.

    Parameters
    ----------
    scale_factor:
        The SF axis of Figures 10 and 12 (may be fractional).
    row_scale:
        Fraction of the true TPC-H cardinalities to generate (default
        1/1000; SF 1 then means 150 customers / 1500 orders / ~6000
        lineitems).
    """

    def __init__(self, scale_factor: float = 1.0, row_scale: float = 0.001,
                 seed: int = 42):
        if scale_factor <= 0:
            raise InvalidParameterError("scale_factor must be positive")
        if row_scale <= 0:
            raise InvalidParameterError("row_scale must be positive")
        self.scale_factor = scale_factor
        self.row_scale = row_scale
        self.seed = seed
        self._rng = random.Random(seed)
        self.tables: Dict[str, List[tuple]] = {}
        self._generate()

    # ------------------------------------------------------------------
    def _count(self, table: str) -> int:
        return max(1, int(_BASE_ROWS[table] * self.scale_factor * self.row_scale))

    def _rand_date(self, rng: random.Random) -> _dt.date:
        span = (_DATE_HI - _DATE_LO).days
        return _DATE_LO + _dt.timedelta(days=rng.randrange(span))

    def _generate(self) -> None:
        rng = self._rng
        n_customer = self._count("customer")
        n_orders = self._count("orders")
        n_supplier = self._count("supplier")
        n_part = self._count("part")

        self.tables["nation"] = [
            (i, name) for i, name in enumerate(_NATIONS)
        ]

        self.tables["customer"] = [
            (
                ck,
                f"Customer#{ck:09d}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.randrange(len(_NATIONS)),
            )
            for ck in range(1, n_customer + 1)
        ]

        self.tables["supplier"] = [
            (
                sk,
                f"Supplier#{sk:09d}",
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.randrange(len(_NATIONS)),
            )
            for sk in range(1, n_supplier + 1)
        ]

        self.tables["part"] = [
            (
                pk,
                f"{rng.choice(_PART_COLORS)} {rng.choice(_PART_NOUNS)} "
                f"part#{pk}",
                round(skewed_price(rng, 900.0, 2100.0), 2),
            )
            for pk in range(1, n_part + 1)
        ]

        partsupp: List[tuple] = []
        for pk in range(1, n_part + 1):
            suppliers = rng.sample(
                range(1, n_supplier + 1),
                min(_PARTSUPP_PER_PART, n_supplier),
            )
            for sk in suppliers:
                partsupp.append(
                    (pk, sk, round(rng.uniform(1.0, 1000.0), 2),
                     rng.randrange(1, 10_000))
                )
        self.tables["partsupp"] = partsupp

        orders: List[tuple] = []
        lineitems: List[tuple] = []
        lk = 0
        for ok in range(1, n_orders + 1):
            ck = rng.randrange(1, n_customer + 1)
            odate = self._rand_date(rng)
            n_lines = rng.randint(*_LINEITEMS_PER_ORDER)
            total = 0.0
            for _line in range(1, n_lines + 1):
                lk += 1
                pk = rng.randrange(1, n_part + 1)
                # one of the suppliers that actually stocks the part
                sk = partsupp[(pk - 1) * min(_PARTSUPP_PER_PART, n_supplier)
                              + rng.randrange(min(_PARTSUPP_PER_PART,
                                                  n_supplier))][1]
                qty = rng.randrange(1, 51)
                extended = round(qty * skewed_price(rng, 900.0, 2100.0), 2)
                discount = round(rng.uniform(0.0, 0.10), 2)
                ship = odate + _dt.timedelta(days=rng.randrange(1, 122))
                receipt = ship + _dt.timedelta(days=rng.randrange(1, 31))
                lineitems.append(
                    (ok, pk, sk, float(qty), extended, discount, ship, receipt)
                )
                total += extended * (1 - discount)
            orders.append((ok, ck, round(total, 2), odate))
        self.tables["orders"] = orders
        self.tables["lineitem"] = lineitems

    # ------------------------------------------------------------------
    def row_counts(self) -> Dict[str, int]:
        return {name: len(rows) for name, rows in self.tables.items()}

    def populate(self, db: Database) -> None:
        """Create the TPC-H tables in ``db`` and load the generated rows."""
        ddl = {
            "nation": [("n_nationkey", "int"), ("n_name", "text")],
            "customer": [
                ("c_custkey", "int"), ("c_name", "text"),
                ("c_acctbal", "float"), ("c_nationkey", "int"),
            ],
            "supplier": [
                ("s_suppkey", "int"), ("s_name", "text"),
                ("s_acctbal", "float"), ("s_nationkey", "int"),
            ],
            "part": [
                ("p_partkey", "int"), ("p_name", "text"),
                ("p_retailprice", "float"),
            ],
            "partsupp": [
                ("ps_partkey", "int"), ("ps_suppkey", "int"),
                ("ps_supplycost", "float"), ("ps_availqty", "int"),
            ],
            "orders": [
                ("o_orderkey", "int"), ("o_custkey", "int"),
                ("o_totalprice", "float"), ("o_orderdate", "date"),
            ],
            "lineitem": [
                ("l_orderkey", "int"), ("l_partkey", "int"),
                ("l_suppkey", "int"), ("l_quantity", "float"),
                ("l_extendedprice", "float"), ("l_discount", "float"),
                ("l_shipdate", "date"), ("l_receiptdate", "date"),
            ],
        }
        for name, columns in ddl.items():
            db.create_table(name, columns)
            db.insert(name, self.tables[name])


def load_tpch(
    scale_factor: float = 1.0,
    row_scale: float = 0.001,
    seed: int = 42,
    **db_kwargs,
) -> Database:
    """Convenience: a fresh Database pre-loaded with TPC-H-like data."""
    db = Database(**db_kwargs)
    TPCHGenerator(scale_factor, row_scale, seed).populate(db)
    return db
