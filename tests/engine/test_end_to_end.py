"""Whole-system stress tests: mid-size data, every configuration axis.

These are the "does the assembled system hold together" checks: the same
workloads through every strategy configuration must agree; a mid-size
TPC-H run must stay internally consistent; and a mixed DDL/DML/query/
persistence session must survive end to end.
"""

import pytest

from repro.engine.database import Database
from repro.workloads import queries as Q
from repro.workloads.checkins import brightkite
from repro.workloads.tpch import load_tpch


class TestStrategyConfigurationsAgree:
    @pytest.mark.parametrize("clause", ["JOIN-ANY", "ELIMINATE",
                                        "FORM-NEW-GROUP"])
    def test_all_strategies_same_sql_results(self, clause):
        data = brightkite(600).points()
        results = []
        for strategy in ("all-pairs", "bounds-checking", "index"):
            db = Database(sgb_all_strategy=strategy, tiebreak="first")
            db.execute("CREATE TABLE c (lat float, lon float)")
            db.insert("c", data)
            res = db.query(
                f"SELECT count(*) FROM c GROUP BY lat, lon "
                f"DISTANCE-TO-ALL L2 WITHIN 0.5 ON-OVERLAP {clause}"
            )
            results.append(sorted(r[0] for r in res))
        assert results[0] == results[1] == results[2]

    def test_any_strategies_same_sql_results(self):
        data = brightkite(600).points()
        results = []
        for strategy in ("all-pairs", "index", "grid"):
            db = Database(sgb_any_strategy=strategy)
            db.execute("CREATE TABLE c (lat float, lon float)")
            db.insert("c", data)
            res = db.query(
                "SELECT count(*) FROM c GROUP BY lat, lon "
                "DISTANCE-TO-ANY L2 WITHIN 0.5"
            )
            results.append(sorted(r[0] for r in res))
        assert results[0] == results[1] == results[2]


class TestTPCHConsistency:
    @pytest.fixture(scope="class")
    def db(self):
        return load_tpch(1.0, tiebreak="first")

    def test_sgb_member_counts_conserved(self, db):
        """Across overlap clauses, member accounting must balance: every
        qualifying input row lands in a group or (ELIMINATE only) nowhere."""
        totals = {}
        for clause in ("join-any", "form-new-group", "eliminate"):
            res = db.execute(Q.sgb1(eps=5000, on_overlap=clause))
            totals[clause] = sum(len(row[4]) for row in res)
        assert totals["join-any"] == totals["form-new-group"]
        assert totals["eliminate"] <= totals["join-any"]

    def test_sgb_any_coarsens_sgb_all(self, db):
        for eps in (2000, 20000):
            all_n = len(db.execute(Q.sgb1(eps=eps)))
            any_n = len(db.execute(Q.sgb2(eps=eps)))
            assert any_n <= all_n

    def test_group_count_monotone_in_eps(self, db):
        counts = [len(db.execute(Q.sgb2(eps=eps)))
                  for eps in (100, 10_000, 1_000_000)]
        assert counts[0] >= counts[1] >= counts[2]

    def test_huge_eps_single_group_covers_all_members(self, db):
        """With ε beyond the attribute spread, SGB forms one group whose
        member list is exactly the qualifying customer set."""
        plain = db.query(
            "SELECT count(*) FROM "
            "(SELECT o_custkey, sum(o_totalprice) AS tp FROM orders "
            " WHERE o_totalprice > 3000 GROUP BY o_custkey) r2, customer "
            "WHERE c_custkey = o_custkey AND c_acctbal > 100"
        ).scalar()
        res = db.execute(Q.sgb1(eps=1e12))
        assert len(res) == 1
        assert len(res.rows[0][4]) == plain

    def test_explain_analyze_runs_on_tpch(self, db):
        text = db.explain_analyze(Q.sgb3(eps=5000,
                                         on_overlap="eliminate"))
        assert "SimilarityGroupBy" in text
        assert "HashJoin" in text


class TestMixedSession:
    def test_full_lifecycle(self, tmp_path):
        from repro.engine.io import load_database, save_database

        db = Database(tiebreak="first")
        db.execute("""
            CREATE TABLE sensors (sid int, region text, x float, y float);
            CREATE INDEX idx_sid ON sensors (sid);
            INSERT INTO sensors VALUES
                (1, 'n', 0, 0), (2, 'n', 0.5, 0), (3, 'n', 9, 9),
                (4, 's', 0.2, 0), (5, 's', 8.8, 9.2)
        """)
        # similarity grouping partitioned by region
        res = db.query(
            "SELECT region, count(*) FROM sensors GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1 PARTITION BY region "
            "ORDER BY region, 2 DESC"
        )
        assert res.rows == [("n", 2), ("n", 1), ("s", 1), ("s", 1)]
        # index lookup still works alongside
        assert db.query(
            "SELECT region FROM sensors WHERE sid = 4"
        ).scalar() == "s"
        # survive a save/load cycle and keep both capabilities
        save_database(db, str(tmp_path / "snap"))
        db2 = load_database(str(tmp_path / "snap"), tiebreak="first")
        res2 = db2.query(
            "SELECT region, count(*) FROM sensors GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1 PARTITION BY region "
            "ORDER BY region, 2 DESC"
        )
        assert res2.rows == res.rows
        assert "IndexScan" in db2.explain(
            "SELECT region FROM sensors WHERE sid = 4"
        )
