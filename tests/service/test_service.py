"""End-to-end service tests: wire protocol, sessions, metrics, shell.

Every test runs against a real :class:`ServerThread` on an ephemeral
port — the same harness the benchmark uses — so these exercise the full
asyncio server, scheduler, and sync client stack.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.database import Database, StatementResult
from repro.engine.shell import Shell
from repro.errors import (
    CatalogError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.obs.export import parse_prometheus_text
from repro.service import ServerThread, ServiceClient, ServiceConfig

SGB_SQL = (
    "SELECT count(*) FROM pts "
    "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
)
PARTITION_SQL = (
    "SELECT city, count(*) FROM pts "
    "GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1 PARTITION BY city"
)


def make_db() -> Database:
    db = Database()
    db.execute("CREATE TABLE pts (city int, x float, y float)")
    rows = []
    for city in range(3):
        for i in range(20):
            rows.append((city, city * 50 + (i % 5) * 0.3, (i % 4) * 0.3))
    db.insert("pts", rows)
    return db


@pytest.fixture(scope="module")
def server():
    with ServerThread(db=make_db()) as s:
        yield s


@pytest.fixture
def client(server):
    c = ServiceClient(port=server.port)
    yield c
    c.close()


class TestProtocolBasics:
    def test_hello_handshake(self, server):
        with ServiceClient(port=server.port) as a, \
                ServiceClient(port=server.port) as b:
            assert a.protocol == 1
            assert a.session_id != b.session_id  # per-session ids

    def test_ping(self, client):
        assert client.ping() is True

    def test_query_matches_direct_execution(self, server, client):
        for sql in ("SELECT city, x, y FROM pts ORDER BY x, y, city",
                    SGB_SQL, PARTITION_SQL):
            direct = server.db.query(sql)
            remote = client.query(sql)
            assert remote.columns == direct.columns
            assert remote.rows == direct.rows

    def test_execute_ddl_dml(self, client):
        created = client.execute("CREATE TABLE tmp_svc (v float)")
        assert isinstance(created, StatementResult)
        assert created.status == "CREATE TABLE"
        inserted = client.execute("INSERT INTO tmp_svc VALUES (1), (2)")
        assert inserted.status == "INSERT 2"
        assert client.query("SELECT count(*) FROM tmp_svc").scalar() == 2
        client.execute("DROP TABLE tmp_svc")

    def test_explain(self, server, client):
        assert client.explain(SGB_SQL) == server.db.explain(SGB_SQL)

    def test_typed_errors_cross_the_wire(self, client):
        with pytest.raises(CatalogError, match="does not exist"):
            client.query("SELECT * FROM no_such_table")

    def test_malformed_line_gets_error_response(self, server):
        c = ServiceClient(port=server.port)
        try:
            c._sock.sendall(b"this is not json\n")
            with pytest.raises(ServiceError, match="malformed"):
                c.wait("never")
        finally:
            c.close()

    def test_unknown_op_rejected(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client.call("teleport")

    def test_pipelined_responses_resolve_by_id(self, client):
        # Fire three requests before reading any response.
        rids = [client.request("query", sql=SGB_SQL) for _ in range(3)]
        # Wait in reverse submission order: the stash must hold earlier
        # responses until their ids are asked for.
        for rid in reversed(rids):
            assert client.wait(rid)["ok"] is True

    def test_stream_snapshot_op(self, server):
        server.db.create_stream_view(
            "svc_view", "pts", ["x", "y"], "any", eps=1.0
        )
        try:
            with ServiceClient(port=server.port) as c:
                snap = c.stream_snapshot("svc_view")
            assert snap["n_points"] == 60
            assert snap["n_groups"] >= 3
            assert len(snap["labels"]) == 60
            assert sum(snap["group_sizes"]) == 60
        finally:
            server.db.drop_stream_view("svc_view")


class TestConnectionCap:
    def test_connections_beyond_cap_get_typed_refusal(self):
        config = ServiceConfig(port=0, metrics_port=None,
                               max_connections=2)
        with ServerThread(db=Database(), config=config) as server:
            a = ServiceClient(port=server.port)
            b = ServiceClient(port=server.port)
            try:
                with pytest.raises(ServiceOverloadedError,
                                   match="connection refused"):
                    ServiceClient(port=server.port)
                # Existing sessions keep working...
                assert a.ping() and b.ping()
            finally:
                a.close()
                b.close()
            # ...and closed slots open up again.
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    with ServiceClient(port=server.port) as c:
                        assert c.ping()
                    break
                except ServiceOverloadedError:
                    # Server-side close bookkeeping races the client's
                    # close() return; retry briefly.
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.01)
            text = server.service.metrics_text()
            assert "repro_service_connections_refused_total 1" in text


class TestMixedLoad:
    N_CLIENTS = 10
    QUERIES = [
        SGB_SQL,
        PARTITION_SQL,
        "SELECT count(*) FROM pts",
        "SELECT city, x FROM pts ORDER BY x, y, city LIMIT 5",
    ]

    def test_ten_clients_zero_drops_and_exact_results(self, server):
        expected = {sql: server.db.query(sql).rows for sql in self.QUERIES}
        failures = []
        connected = []
        barrier = threading.Barrier(self.N_CLIENTS)

        def worker(worker_id: int) -> None:
            try:
                with ServiceClient(port=server.port) as c:
                    connected.append(worker_id)
                    barrier.wait(timeout=10.0)
                    for round_no in range(3):
                        sql = self.QUERIES[
                            (worker_id + round_no) % len(self.QUERIES)
                        ]
                        got = c.query(sql).rows
                        if got != expected[sql]:
                            failures.append(
                                (worker_id, sql, got[:3], "mismatch")
                            )
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                failures.append((worker_id, type(exc).__name__, str(exc)))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not failures, failures
        assert len(connected) == self.N_CLIENTS  # zero dropped connections


class TestMetricsEndpoints:
    def test_metrics_op_and_http_agree_on_series(self, server, client):
        client.query(SGB_SQL)
        wire_text = client.metrics()
        url = f"http://127.0.0.1:{server.metrics_port}/metrics"
        with urllib.request.urlopen(url) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            http_text = resp.read().decode("utf-8")
        assert set(parse_prometheus_text(wire_text)) == \
            set(parse_prometheus_text(http_text))

    def test_key_series_present_and_parseable(self, server, client):
        client.query(SGB_SQL)
        parsed = parse_prometheus_text(client.metrics())
        # Service-level counters and gauges.
        assert parsed[("repro_service_requests_total", ())] >= 1
        assert parsed[("repro_service_completed_total", ())] >= 1
        assert ("repro_service_rejected_total", ()) in parsed
        assert ("repro_service_queue_depth", ()) in parsed
        assert ("repro_service_inflight", ()) in parsed
        assert parsed[("repro_service_sessions_active", ())] >= 1
        # Latency histograms: count, sum, and at least the +Inf bucket.
        for hist in ("queue_wait", "exec", "request"):
            prefix = f"repro_service_{hist}_latency_seconds"
            assert parsed[(f"{prefix}_count", ())] >= 1
            assert parsed[(f"{prefix}_sum", ())] >= 0.0
            assert parsed[
                (f"{prefix}_bucket", (("le", "+Inf"),))
            ] >= 1
        # The engine snapshot rides along in the same payload.
        assert parsed[
            ("repro_queries_total", ())
        ] >= 1

    def test_http_unknown_path_is_404(self, server):
        url = f"http://127.0.0.1:{server.metrics_port}/else"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url)
        assert err.value.code == 404


class TestStatusEndpoint:
    def fetch_status(self, server):
        import json

        url = f"http://127.0.0.1:{server.metrics_port}/status"
        with urllib.request.urlopen(url) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "application/json")
            return json.loads(resp.read().decode("utf-8"))

    def test_basic_shape_with_observability_off(self, server, client):
        client.query(SGB_SQL)
        status = self.fetch_status(server)
        assert status["server"] == "repro.service"
        assert status["uptime_s"] >= 0
        assert status["sessions"] >= 1
        assert status["scheduler"]["queue_depth"] >= 0
        assert status["scheduler"]["inflight"] >= 0
        assert status["trace"] == {"enabled": False}
        assert status["profiler"] == {"enabled": False}
        assert status["query_log"] == {"enabled": False}

    def test_reports_profiler_state_and_slow_query_ring(self):
        db = make_db()
        db.set_trace(True)
        db.set_profile(True, interval_s=0.001)
        db.set_query_log(True)
        try:
            with ServerThread(db=db) as server:
                with ServiceClient(port=server.port) as c:
                    c.query(SGB_SQL)
                    c.query(PARTITION_SQL)
                status = self.fetch_status(server)
        finally:
            db.set_profile(False)
        assert status["trace"]["enabled"] is True
        assert status["trace"]["spans_retained"] > 0
        prof = status["profiler"]
        assert prof["enabled"] is True and prof["running"] is True
        assert prof["mode"] == "thread"
        ql = status["query_log"]
        assert ql["enabled"] is True
        assert ql["recorded"] == 2
        slow = ql["slow_queries"]
        assert len(slow) == 2
        assert {q["sql"] for q in slow} == {SGB_SQL, PARTITION_SQL}
        assert all(q["latency_ms"] > 0 for q in slow)


class TestTracing:
    def test_service_spans_ingested_with_parenting(self):
        db = make_db()
        db.set_trace(True)
        with ServerThread(db=db) as server:
            with ServiceClient(port=server.port) as c:
                c.query(SGB_SQL)
        spans = {r.span_id: r for r in db.tracer.records()}
        requests = [
            r for r in spans.values() if r.name == "service_request"
        ]
        assert len(requests) == 1
        root = requests[0]
        assert root.parent_id == ""
        assert root.attrs["op"] == "query"
        children = [
            r for r in spans.values() if r.parent_id == root.span_id
        ]
        names = sorted(c.name for c in children)
        assert names == ["service_exec", "service_queue"]
        for child in children:
            assert root.start_s <= child.start_s + 1e-6
            assert child.end_s <= root.end_s + 1e-6
        # The engine's own query span was recorded too (separate root).
        assert any(r.name == "query" for r in spans.values())


class TestShellConnect:
    def test_connect_routes_statements_over_the_wire(self, server):
        shell = Shell(db=Database())  # local db stays empty
        out = shell.feed(f"\\connect 127.0.0.1 {server.port}")
        assert "Connected" in out and "session" in out
        table = shell.feed("SELECT count(*) FROM pts;")
        assert "60" in table  # served by the remote db, not the local one
        plan = shell.feed(f"\\e {SGB_SQL}")
        assert "SGB" in plan or "->" in plan
        metrics = shell.feed("\\metrics")
        assert "repro_service_requests_total" in metrics
        out = shell.feed("\\disconnect")
        assert "Disconnected" in out
        assert "ERROR" in shell.feed("SELECT count(*) FROM pts;")

    def test_connect_failure_is_reported_not_raised(self):
        shell = Shell(db=Database())
        out = shell.feed("\\connect 127.0.0.1 1")  # nothing listens there
        assert out.startswith("ERROR: could not connect")
        assert shell.client is None
