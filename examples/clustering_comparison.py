"""SGB operators vs classic clustering — the paper's Figure 11 scenario.

Runs DBSCAN, BIRCH, K-means and all four SGB variants over the same
synthetic check-in data, reporting runtime and the groupings each produces.
The point of the paper's comparison: SGB computes its groups in a single
streaming pass inside the database, while the clustering algorithms iterate
over the data repeatedly.

    python examples/clustering_comparison.py [n_checkins]
"""

import sys
import time

from repro import sgb_all, sgb_any
from repro.clustering import birch, dbscan, kmeans
from repro.workloads.checkins import brightkite

EPS = 0.2  # degrees, as in the paper's setup for SGB and DBSCAN


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return label, elapsed, result


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    points = brightkite(n).points()
    print(f"{n} Brightkite-like check-ins, eps={EPS}\n")

    runs = [
        timed("DBSCAN (R-tree)", lambda: dbscan(points, EPS, min_pts=5)),
        timed("BIRCH", lambda: birch(points, threshold=EPS, n_clusters=40)),
        timed("K-means (k=40)", lambda: kmeans(points, 40, max_iter=30)),
        timed("K-means (k=20)", lambda: kmeans(points, 20, max_iter=30)),
        timed("SGB-All form-new",
              lambda: sgb_all(points, EPS, "l2", "form-new-group", "index",
                              tiebreak="first")),
        timed("SGB-All eliminate",
              lambda: sgb_all(points, EPS, "l2", "eliminate", "index",
                              tiebreak="first")),
        timed("SGB-All join-any",
              lambda: sgb_all(points, EPS, "l2", "join-any", "index",
                              tiebreak="first")),
        timed("SGB-Any", lambda: sgb_any(points, EPS, "l2", "index")),
    ]

    print(f"{'method':22s} {'seconds':>9s}  groups")
    for label, elapsed, result in runs:
        if hasattr(result, "n_groups"):
            groups = result.n_groups
        elif hasattr(result, "n_clusters"):
            groups = result.n_clusters
        elif hasattr(result, "centroids"):
            groups = len(result.centroids)
        else:
            groups = "?"
        print(f"{label:22s} {elapsed:9.3f}  {groups}")

    sgb_time = min(elapsed for label, elapsed, _ in runs
                   if label.startswith("SGB"))
    cluster_time = max(elapsed for label, elapsed, _ in runs
                       if not label.startswith("SGB"))
    print(f"\nslowest clustering / fastest SGB = "
          f"{cluster_time / sgb_time:.1f}x")


if __name__ == "__main__":
    main()
