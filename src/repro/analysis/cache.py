"""Incremental analysis cache for sgblint.

Findings for a file are a pure function of (file content, rule set) for
per-file rules, and of (package content, rule set) for whole-program
rules.  The cache exploits both: per-file findings are stored under the
file's content hash and served without re-parsing when the hash matches;
project-rule findings are stored under a signature folding every package
file's hash, so a warm run with nothing changed re-analyzes nothing at
all.

When files *did* change, the re-analyzed set is the changed files plus
their reverse-dependency cone (modules that import a changed module,
transitively, via the symbol table's import graph).  Per-file rules
don't strictly need the cone — their findings depend only on the file —
but re-running them over the cone keeps the cache honest against rules
that scope themselves by module identity, and it is exactly the set the
project pass must rebuild anyway, so the conservative choice costs
nothing extra.

The cache file is JSON, safe to delete at any time, and versioned: a
rule-set change (different ids, or a bumped ``CACHE_VERSION``) discards
it wholesale rather than risking stale findings.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Rule,
    run_project_rules,
    run_rules,
)

DEFAULT_CACHE_PATH = ".sgblint_cache.json"

#: Bump when analysis semantics change in a way hashes cannot see.
CACHE_VERSION = 1


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def file_hash(path: str) -> Optional[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return content_hash(fh.read())
    except OSError:
        return None


class CacheStats:
    """What a cached run actually did — the CLI prints it and the cache
    invalidation tests assert on it."""

    __slots__ = ("analyzed", "cached", "project_reused")

    def __init__(self) -> None:
        #: Paths re-analyzed this run (changed + reverse cone + new).
        self.analyzed: List[str] = []
        #: Paths whose findings were served from the cache.
        self.cached: List[str] = []
        #: Whole-program findings came from the cache unchanged.
        self.project_reused = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "analyzed": len(self.analyzed),
            "cached": len(self.cached),
            "project_reused": self.project_reused,
        }


class AnalysisCache:
    """Load/serve/update one cache file across a single sgblint run."""

    def __init__(self, path: str = DEFAULT_CACHE_PATH):
        self.path = path
        self.stats = CacheStats()
        self._data: Dict[str, object] = {}
        self._loaded_signature: Optional[str] = None
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    raw = json.load(fh)
                if (isinstance(raw, dict)
                        and raw.get("version") == CACHE_VERSION):
                    self._data = raw
                    self._loaded_signature = raw.get("rule_signature")
            except (OSError, ValueError):
                self._data = {}

    # -- signatures ---------------------------------------------------------
    @staticmethod
    def rule_signature(rules: Iterable[Rule]) -> str:
        ids = sorted(r.id for r in rules)
        return content_hash(f"v{CACHE_VERSION}:" + ",".join(ids))

    @staticmethod
    def project_signature(contexts: Iterable[FileContext]) -> str:
        parts = sorted(
            f"{ctx.path}={content_hash(ctx.source)}" for ctx in contexts
        )
        return content_hash("\n".join(parts))

    # -- the run ------------------------------------------------------------
    def run(self, contexts: List[FileContext], project,
            file_rules: List[Rule],
            project_rules: List[Rule]) -> List[Finding]:
        signature = self.rule_signature(list(file_rules)
                                        + list(project_rules))
        if self._loaded_signature != signature:
            self._data = {}  # different rules: everything is stale
        files: Dict[str, Dict[str, object]] = dict(
            self._data.get("files", {}))  # type: ignore[arg-type]

        hashes = {ctx.path: content_hash(ctx.source) for ctx in contexts}
        changed: Set[str] = {
            path for path, digest in hashes.items()
            if files.get(path, {}).get("hash") != digest
        }
        cone = self._reverse_cone(project, changed)
        dirty = changed | cone

        findings: List[Finding] = []
        new_files: Dict[str, Dict[str, object]] = {}
        for ctx in contexts:
            if ctx.path in dirty:
                file_findings = (run_rules(ctx, file_rules)
                                 if file_rules else [])
                self.stats.analyzed.append(ctx.path)
            else:
                file_findings = [
                    Finding.from_dict(d)
                    for d in files[ctx.path].get("findings", [])
                ]
                self.stats.cached.append(ctx.path)
            new_files[ctx.path] = {
                "hash": hashes[ctx.path],
                "findings": [f.as_dict() for f in file_findings],
            }
            findings.extend(file_findings)

        if project_rules:
            findings.extend(
                self._project_findings(project, project_rules))

        self._data = {
            "version": CACHE_VERSION,
            "rule_signature": signature,
            "files": new_files,
            "project": self._data.get("project"),
        }
        self.save()
        return findings

    def _project_findings(self, project,
                          project_rules: List[Rule]) -> List[Finding]:
        package_contexts = list(project.package_contexts.values())
        signature = self.project_signature(package_contexts)
        cached = self._data.get("project")
        if isinstance(cached, dict) and cached.get("signature") == signature:
            self.stats.project_reused = True
            return [Finding.from_dict(d)
                    for d in cached.get("findings", [])]
        found = run_project_rules(project, project_rules)
        self._data["project"] = {
            "signature": signature,
            "findings": [f.as_dict() for f in found],
        }
        return found

    def _reverse_cone(self, project, changed: Set[str]) -> Set[str]:
        """Paths of modules that (transitively) import a changed module."""
        if not changed:
            return set()
        edges = project.table.import_edges()
        dependents: Dict[str, Set[str]] = {}
        for module, imports in edges.items():
            for imported in imports:
                dependents.setdefault(imported, set()).add(module)
        path_by_module = {
            module: ctx.path
            for module, ctx in project.package_contexts.items()
        }
        module_by_path = {p: m for m, p in path_by_module.items()}
        frontier = [module_by_path[p] for p in changed
                    if p in module_by_path]
        seen: Set[str] = set(frontier)
        cone: Set[str] = set()
        while frontier:
            module = frontier.pop()
            for dependent in dependents.get(module, ()):
                if dependent in seen:
                    continue
                seen.add(dependent)
                cone.add(path_by_module.get(dependent, ""))
                frontier.append(dependent)
        cone.discard("")
        return cone

    def save(self) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self._data, fh, sort_keys=True)
        os.replace(tmp, self.path)
