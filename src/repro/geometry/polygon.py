"""Polygon helpers for the spatial aggregates (``ST_Polygon`` in the paper).

The MANET and social-grouping queries in Section 5 aggregate each group into
an enclosing polygon.  We materialize that as the group's convex hull, which
is the tightest convex region covering the members.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.convex_hull import convex_hull, cross

Point2 = Tuple[float, float]


class Polygon:
    """A simple (convex, CCW) polygon produced by ``ST_Polygon``.

    Exposes the handful of measures example applications need; equality is
    structural on the vertex ring so query results compare cleanly in tests.
    """

    __slots__ = ("vertices",)

    def __init__(self, vertices: Sequence[Sequence[float]]):
        self.vertices: List[Point2] = [(float(x), float(y)) for x, y in vertices]

    @classmethod
    def enclosing(cls, points: Sequence[Sequence[float]]) -> "Polygon":
        """Convex polygon enclosing ``points`` (degenerates allowed)."""
        return cls(convex_hull(points))

    def area(self) -> float:
        """Shoelace area; 0.0 for degenerate polygons."""
        n = len(self.vertices)
        if n < 3:
            return 0.0
        total = 0.0
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def perimeter(self) -> float:
        n = len(self.vertices)
        if n < 2:
            return 0.0
        total = 0.0
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            if n == 2 and i == 1:
                break  # a segment has one edge, not two
            total += ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        return total

    def contains(self, p: Sequence[float]) -> bool:
        n = len(self.vertices)
        if n == 0:
            return False
        if n < 3:
            from repro.geometry.convex_hull import point_in_convex_polygon

            return point_in_convex_polygon(p, self.vertices)
        return all(
            cross(self.vertices[i], self.vertices[(i + 1) % n], p) >= -1e-12
            for i in range(n)
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polygon) and self.vertices == other.vertices

    def __hash__(self) -> int:
        return hash(tuple(self.vertices))

    def __repr__(self) -> str:
        return f"Polygon({self.vertices})"
