"""EXPLAIN ANALYZE: SQL path, counter values, and off-by-default checks."""

import json

import pytest

from repro import Database
from repro.errors import ParseError
from repro.obs import attach, detach
from repro.sql.parser import parse


@pytest.fixture
def db():
    d = Database(tiebreak="first")
    d.execute("CREATE TABLE pts (id int, x float, y float, region text)")
    d.execute(
        "INSERT INTO pts VALUES "
        "(1, 1.0, 1.0, 'a'), (2, 1.5, 1.2, 'a'), (3, 9.0, 9.0, 'b'), "
        "(4, NULL, 2.0, 'b'), (5, 2.0, NULL, 'a')"
    )
    return d


ANY_SQL = (
    "SELECT count(*) FROM pts GROUP BY x, y DISTANCE-TO-ANY L2 WITHIN 1"
)
ALL_SQL = (
    "SELECT count(*) FROM pts GROUP BY x, y "
    "DISTANCE-TO-ALL L2 WITHIN 1 ON-OVERLAP JOIN-ANY"
)


class TestExplainAnalyzeSQL:
    def test_returns_query_plan_column(self, db):
        result = db.execute("EXPLAIN ANALYZE " + ANY_SQL)
        assert result.columns == ["QUERY PLAN"]
        text = "\n".join(row[0] for row in result.rows)
        assert "SimilarityGroupBy" in text
        assert "actual rows=" in text
        assert "ms" in text

    def test_reports_null_skips_and_sgb_counters(self, db):
        # Fixed workload: rows 4 and 5 have a NULL grouping attribute, the
        # remaining 3 points form components {1,2} and {3}.
        text = "\n".join(
            row[0] for row in db.execute("EXPLAIN ANALYZE " + ANY_SQL).rows
        )
        assert "rows_skipped_null=2" in text
        assert "points=3" in text
        assert "groups_created=3" in text
        assert "groups_merged=1" in text
        assert "index_probes=3" in text

    def test_plain_explain_has_no_actuals(self, db):
        result = db.execute("EXPLAIN " + ANY_SQL)
        assert result.columns == ["QUERY PLAN"]
        text = "\n".join(row[0] for row in result.rows)
        assert "SimilarityGroupBy" in text
        assert "actual rows=" not in text

    def test_explain_rejects_non_select(self, db):
        with pytest.raises(ParseError):
            db.execute("EXPLAIN INSERT INTO pts VALUES (6, 0, 0, 'c')")

    def test_shell_prints_plan_verbatim(self, db):
        from repro.engine.shell import Shell

        shell = Shell(db)
        out = shell.feed("EXPLAIN ANALYZE " + ANY_SQL + ";")
        assert out.startswith("-> ")
        assert "rows_skipped_null=2" in out
        assert "|" not in out  # not boxed as an ordinary result table


class TestAnalyzeCounters:
    def test_sgb_any_counter_values(self, db):
        analyzed = db.analyze(ANY_SQL)
        assert analyzed.rows == db.query(ANY_SQL).rows
        totals = analyzed.node_counters()
        assert totals["rows_skipped_null"] == 2
        assert totals["points"] == 3
        assert totals["groups_created"] == 3
        assert totals["groups_merged"] == 1
        assert totals["index_probes"] == 3
        assert totals["candidates"] >= 1
        assert totals["distance_computations"] >= 1

    def test_sgb_all_counter_values(self, db):
        totals = db.analyze(ALL_SQL).node_counters()
        assert totals["rows_skipped_null"] == 2
        assert totals["points"] == 3
        assert totals["groups_created"] == 2
        assert totals["index_probes"] == 3
        assert totals["distance_computations"] >= 1

    def test_metrics_json_round_trips(self, db):
        analyzed = db.analyze(ANY_SQL)
        tree = json.loads(analyzed.metrics_json())
        assert tree["node"].startswith("Project")
        assert tree["loops"] == 1
        child = tree["children"][0]
        assert child["node"].startswith("SimilarityGroupBy")
        assert child["counters"]["rows_skipped_null"] == 2
        scan = child["children"][0]
        assert scan["rows"] == 5  # NULL rows are produced by the scan

    def test_results_match_uninstrumented_execution(self, db):
        assert db.analyze(ALL_SQL).rows == db.query(ALL_SQL).rows


class TestResourceAccounting:
    def test_analyze_reports_per_node_peak_memory(self, db):
        text = "\n".join(
            row[0] for row in db.execute("EXPLAIN ANALYZE " + ANY_SQL).rows
        )
        assert "mem_peak=" in text
        # Every node line carries a human unit, not raw byte counts.
        for line in text.splitlines():
            if "mem_peak=" in line:
                part = line.split("mem_peak=")[1].split(")")[0]
                assert part.endswith(("B", "KiB", "MiB", "GiB"))

    def test_peak_memory_inclusive_of_children(self, db):
        analyzed = db.analyze(ANY_SQL)
        tree = json.loads(analyzed.metrics_json())

        def walk(node):
            yield node
            for child in node.get("children", []):
                yield from walk(child)

        peaks = [n.get("mem_peak_bytes") for n in walk(tree)]
        assert all(isinstance(p, int) and p >= 0 for p in peaks)
        # The root's peak covers everything produced beneath it.
        assert tree["mem_peak_bytes"] == max(peaks)

    def test_plain_query_does_no_memory_tracking(self, db):
        import tracemalloc

        db.query(ANY_SQL)
        assert not tracemalloc.is_tracing()

    def test_rows_spooled_counted_for_partitioned_query(self, db):
        totals = db.analyze(
            "SELECT region, count(*) FROM pts GROUP BY x, y "
            "DISTANCE-TO-ANY L2 WITHIN 1 PARTITION BY region"
        ).node_counters()
        # NULL grouping attributes are skipped up front, before any row
        # is materialized into a partition spool.
        assert totals["rows_spooled"] == 3
        assert totals["rows_skipped_null"] == 2

    def test_derived_ratios_rendered(self, db):
        text = "\n".join(
            row[0] for row in db.execute("EXPLAIN ANALYZE " + ANY_SQL).rows
        )
        assert "candidates_per_probe=" in text
        assert "refines_per_candidate=" in text


class TestInstrumentationOffByDefault:
    def test_plan_nodes_uninstrumented_by_default(self, db):
        plan = db._planner().plan_query(parse(ANY_SQL)[0])

        def nodes(node):
            yield node
            for child in node.children():
                yield from nodes(child)

        assert all(n._obs is None for n in nodes(plan))
        attach(plan)
        assert all(n._obs is not None for n in nodes(plan))
        detach(plan)
        assert all(n._obs is None for n in nodes(plan))

    def test_analyze_detaches_afterwards(self, db):
        db.analyze(ANY_SQL)
        # A later ordinary query must run the cheap uninstrumented path and
        # still produce the same rows.
        assert sorted(db.query(ANY_SQL).rows) == [(1,), (2,)]

    def test_uninstrumented_operator_does_not_wrap_metric(self):
        from repro.core.sgb_all import SGBAllOperator
        from repro.core.sgb_any import SGBAnyOperator
        from repro.obs import MetricBag

        assert not hasattr(SGBAllOperator(eps=1).metric, "calls")
        assert not hasattr(SGBAnyOperator(eps=1).metric, "calls")
        assert hasattr(SGBAllOperator(eps=1, metrics=MetricBag()).metric,
                       "calls")
        assert hasattr(SGBAnyOperator(eps=1, metrics=MetricBag()).metric,
                       "calls")
