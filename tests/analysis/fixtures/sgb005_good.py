# sgblint: module=repro.core.fixture_pickle_good
"""SGB005 true negatives: module-level workers pickle fine."""

from concurrent.futures import ProcessPoolExecutor


def worker(task):
    return task * 2


def run(tasks):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(worker, tasks))
