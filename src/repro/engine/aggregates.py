"""Aggregate function implementations for the aggregation operators.

Each aggregate is an accumulator factory with the classic
``init`` / ``step`` / ``final`` protocol, so both the standard hash
GROUP BY node and the SGB node drive them identically.  The registry
includes the paper's user-defined aggregates: ``array_agg``/``list_id``
(collect values) and ``st_polygon`` (enclosing polygon of the group's
2-D grouping attributes — Section 5 queries).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.geometry.polygon import Polygon


class Accumulator:
    """One aggregate's running state for one group."""

    def step(self, args: Tuple[Any, ...]) -> None:
        raise NotImplementedError

    def final(self) -> Any:
        raise NotImplementedError


class _Count(Accumulator):
    def __init__(self) -> None:
        self.n = 0

    def step(self, args: Tuple[Any, ...]) -> None:
        if not args or args[0] is not None:
            self.n += 1

    def final(self) -> Any:
        return self.n


class _Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def step(self, args: Tuple[Any, ...]) -> None:
        v = args[0]
        if v is None:
            return
        self.total = v if self.total is None else self.total + v

    def final(self) -> Any:
        return self.total


class _Avg(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def step(self, args: Tuple[Any, ...]) -> None:
        v = args[0]
        if v is None:
            return
        self.total += v
        self.n += 1

    def final(self) -> Any:
        return self.total / self.n if self.n else None


class _Min(Accumulator):
    def __init__(self) -> None:
        self.value: Any = None

    def step(self, args: Tuple[Any, ...]) -> None:
        v = args[0]
        if v is None:
            return
        if self.value is None or v < self.value:
            self.value = v

    def final(self) -> Any:
        return self.value


class _Max(Accumulator):
    def __init__(self) -> None:
        self.value: Any = None

    def step(self, args: Tuple[Any, ...]) -> None:
        v = args[0]
        if v is None:
            return
        if self.value is None or v > self.value:
            self.value = v

    def final(self) -> Any:
        return self.value


class _ArrayAgg(Accumulator):
    def __init__(self) -> None:
        self.values: List[Any] = []

    def step(self, args: Tuple[Any, ...]) -> None:
        self.values.append(args[0])

    def final(self) -> Any:
        return self.values


class _StPolygon(Accumulator):
    """``ST_Polygon(x, y)`` — convex polygon enclosing the group's points."""

    def __init__(self) -> None:
        self.points: List[Tuple[float, float]] = []

    def step(self, args: Tuple[Any, ...]) -> None:
        x, y = args
        if x is None or y is None:
            return
        self.points.append((float(x), float(y)))

    def final(self) -> Any:
        return Polygon.enclosing(self.points) if self.points else None


class _Variance(Accumulator):
    """Welford's online variance; ``sample=True`` for the n-1 denominator."""

    def __init__(self, sample: bool, sqrt: bool):
        self.sample = sample
        self.sqrt = sqrt
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def step(self, args: Tuple[Any, ...]) -> None:
        v = args[0]
        if v is None:
            return
        self.n += 1
        delta = v - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (v - self.mean)

    def final(self) -> Any:
        denom = self.n - 1 if self.sample else self.n
        if denom <= 0:
            return None
        value = self.m2 / denom
        if self.sqrt:
            value = value ** 0.5
        return value


def _stddev() -> Accumulator:
    return _Variance(sample=True, sqrt=True)


def _stddev_pop() -> Accumulator:
    return _Variance(sample=False, sqrt=True)


def _variance() -> Accumulator:
    return _Variance(sample=True, sqrt=False)


def _var_pop() -> Accumulator:
    return _Variance(sample=False, sqrt=False)


class _Median(Accumulator):
    def __init__(self) -> None:
        self.values: List[Any] = []

    def step(self, args: Tuple[Any, ...]) -> None:
        if args[0] is not None:
            self.values.append(args[0])

    def final(self) -> Any:
        if not self.values:
            return None
        ordered = sorted(self.values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0


class _StringAgg(Accumulator):
    """``string_agg(value, separator)`` — separator must be constant per
    group (SQL requires a constant there anyway)."""

    def __init__(self) -> None:
        self.parts: List[str] = []
        self.sep: Any = None

    def step(self, args: Tuple[Any, ...]) -> None:
        value, sep = args
        if sep is not None:
            self.sep = sep
        if value is not None:
            self.parts.append(str(value))

    def final(self) -> Any:
        if not self.parts:
            return None
        return (self.sep or "").join(self.parts)


class _DistinctWrapper(Accumulator):
    def __init__(self, inner: Accumulator):
        self.inner = inner
        self.seen: set = set()

    def step(self, args: Tuple[Any, ...]) -> None:
        if args in self.seen:
            return
        self.seen.add(args)
        self.inner.step(args)

    def final(self) -> Any:
        return self.inner.final()


_AGGREGATES: dict = {
    "count": (_Count, (0, 1)),
    "sum": (_Sum, (1,)),
    "avg": (_Avg, (1,)),
    "average": (_Avg, (1,)),
    "min": (_Min, (1,)),
    "max": (_Max, (1,)),
    "array_agg": (_ArrayAgg, (1,)),
    "list_id": (_ArrayAgg, (1,)),  # the paper's List-ID UDA
    "st_polygon": (_StPolygon, (2,)),
    "stddev": (_stddev, (1,)),
    "stddev_samp": (_stddev, (1,)),
    "stddev_pop": (_stddev_pop, (1,)),
    "variance": (_variance, (1,)),
    "var_samp": (_variance, (1,)),
    "var_pop": (_var_pop, (1,)),
    "median": (_Median, (1,)),
    "string_agg": (_StringAgg, (2,)),
}


def is_aggregate_name(name: str) -> bool:
    return name.lower() in _AGGREGATES


def make_accumulator(name: str, n_args: int, distinct: bool = False) -> Accumulator:
    name = name.lower()
    try:
        cls, arities = _AGGREGATES[name]
    except KeyError:
        raise PlanningError(f"unknown aggregate {name!r}") from None
    if n_args not in arities:
        raise PlanningError(
            f"aggregate {name} takes {arities} argument(s), got {n_args}"
        )
    acc: Accumulator = cls()
    return _DistinctWrapper(acc) if distinct else acc
