"""Streaming SGB views over engine tables (the INSERT-then-requery path).

A :class:`StreamingGroupView` attaches an incremental SGB engine to a
table: existing rows are back-filled through a
:class:`~repro.streaming.micro_batch.MicroBatcher`, and every subsequent
``INSERT`` — SQL or Python API — feeds the engine via the table's insert
listeners.  Re-querying the view is then a snapshot of maintained state
instead of a from-scratch recompute, which is the amortization the
repeated-query literature (e.g. COMPARE, arXiv:2107.11967) motivates.

Rows with a NULL grouping attribute are skipped, mirroring the SGB
executor node's treatment of NULLs; DATE attributes map to ordinal days
exactly like the batch SQL path, so a view over a date column groups
"within ε days".
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.result import GroupingResult
from repro.engine.executor.sgb import _coordinate
from repro.errors import ExecutionError, InvalidParameterError
from repro.streaming.all_engine import StreamingSGBAll
from repro.streaming.any_engine import StreamingSGBAny
from repro.streaming.micro_batch import MicroBatcher
from repro.streaming.stats import StreamStats


class StreamingGroupView:
    """An incrementally-maintained similarity grouping over a table.

    Parameters
    ----------
    name:
        View name (unique per database).
    table:
        The :class:`~repro.engine.table.Table` to follow.
    columns:
        Numeric (or DATE) grouping columns.
    mode:
        ``"any"`` or ``"all"`` — which SGB semantics to maintain.
    eps / metric / batch_size / engine_options:
        Forwarded to the streaming engine and micro-batcher.
    metrics / tracer:
        Observability collectors handed to the micro-batcher (the owning
        Database passes its cumulative bag and, when tracing, its tracer).
    """

    def __init__(
        self,
        name: str,
        table,
        columns: Sequence[str],
        mode: str = "any",
        *,
        eps: float,
        metric: str = "l2",
        batch_size: int = 32,
        metrics=None,
        tracer=None,
        **engine_options,
    ):
        if not columns:
            raise InvalidParameterError(
                "a streaming view needs at least one grouping column"
            )
        self.name = name.lower()
        self.table = table
        self.columns = [c.lower() for c in columns]
        self.mode = mode.strip().lower()
        self._col_idx = [table.schema.resolve(c) for c in self.columns]
        if self.mode == "any":
            engine = StreamingSGBAny(eps=eps, metric=metric, **engine_options)
        elif self.mode == "all":
            engine = StreamingSGBAll(eps=eps, metric=metric, **engine_options)
        else:
            raise InvalidParameterError(
                f"unknown streaming mode {mode!r}; expected 'any' or 'all'"
            )
        self.eps = engine.eps
        self.batcher = MicroBatcher(engine, batch_size=batch_size,
                                    metrics=metrics, tracer=tracer)
        self._row_ids: List[int] = []  # table positions of ingested rows
        self._skipped = 0
        self._attached = False
        for row_id, row in enumerate(table.rows):
            self._on_insert(row, row_id)
        table.add_insert_listener(self._on_insert)
        self._attached = True

    # ------------------------------------------------------------------
    def _on_insert(self, row: Tuple, row_id: int) -> None:
        coords = tuple(row[i] for i in self._col_idx)
        if any(c is None for c in coords):
            self._skipped += 1
            self.batcher.note_skipped_null()
            return
        try:
            point = tuple(_coordinate(c) for c in coords)
        except (TypeError, ValueError):
            raise ExecutionError(
                f"streaming view {self.name!r}: grouping attributes must be "
                f"numeric, got {coords!r}"
            ) from None
        self._row_ids.append(row_id)
        self.batcher.insert(point)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Rows ingested (buffered ones included, NULL-skipped excluded)."""
        return self.batcher.n_points

    @property
    def n_skipped(self) -> int:
        return self._skipped

    @property
    def stats(self) -> StreamStats:
        return self.batcher.stats

    def snapshot(self) -> GroupingResult:
        """Current grouping over the ingested rows."""
        return self.batcher.snapshot()

    def n_groups(self) -> int:
        return self.snapshot().n_groups

    def group_sizes(self) -> List[int]:
        return self.snapshot().group_sizes()

    def group_rows(self) -> List[List[int]]:
        """Table row positions per group (largest group first)."""
        snap = self.snapshot()
        groups = sorted(
            snap.groups().values(), key=lambda ids: (-len(ids), ids)
        )
        return [[self._row_ids[i] for i in ids] for ids in groups]

    def detach(self) -> None:
        """Stop following table inserts (the view keeps its last state)."""
        if self._attached:
            self.table.remove_insert_listener(self._on_insert)
            self._attached = False

    def __repr__(self) -> str:
        return (
            f"StreamingGroupView({self.name!r}, table={self.table.name!r}, "
            f"columns={self.columns}, mode={self.mode!r}, eps={self.eps}, "
            f"points={self.n_points})"
        )
