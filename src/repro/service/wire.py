"""Wire format: JSON-lines framing plus value (de)serialization.

One message per ``\\n``-terminated line, UTF-8 JSON.  Encoding is
deterministic — keys sorted, compact separators, ``allow_nan=False`` —
so identical results serialize to identical bytes (responses are
byte-comparable in tests and cache-friendly).

JSON has no NaN/±inf, no dates, and no tuples, so result values use a
small tagged encoding:

========================  =======================================
value                     encoding
========================  =======================================
``float('nan')``          ``{"$f": "nan"}``
``float('inf')``          ``{"$f": "inf"}`` / ``{"$f": "-inf"}``
``datetime.date``         ``{"$d": "2009-03-29"}``
row (tuple)               JSON array; decoded back to a tuple
nested list               JSON array; decoded back to a list
int/float/str/bool/None   native JSON
========================  =======================================

The module doubles as the repo's *shared* result-serialization helper:
:func:`encode_result` / :func:`decode_result` round-trip
:class:`~repro.engine.database.QueryResult` and
:class:`~repro.engine.database.StatementResult`, and
:func:`render_value` is the single human-readable value formatter (the
SQL shell uses it for its tables, the client CLI for remote ones), so
local and remote output cannot drift.
"""

from __future__ import annotations

import datetime as _dt
import json
import math
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.engine.database import QueryResult, StatementResult
from repro.errors import ServiceError

#: Wire protocol revision, sent in the server hello.
PROTOCOL_VERSION = 1

#: Longest accepted message line, bytes (also the StreamReader limit).
MAX_LINE_BYTES = 1 << 20


# ----------------------------------------------------------------------
# values
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Any:
    """JSON-safe encoding of one result cell (see the module table)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return {"$f": "nan"}
        if math.isinf(value):
            return {"$f": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, int) or isinstance(value, str):
        return value
    if isinstance(value, _dt.date):
        return {"$d": value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    raise ServiceError(
        f"value of type {type(value).__name__} is not wire-serializable"
    )


_SPECIAL_FLOATS = {
    "nan": math.nan,
    "inf": math.inf,
    "-inf": -math.inf,
}


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value` (inner sequences come back as
    lists; row tuples are restored by :func:`decode_rows`)."""
    if isinstance(value, dict):
        if "$f" in value:
            try:
                return _SPECIAL_FLOATS[value["$f"]]
            except KeyError:
                raise ServiceError(
                    f"unknown float tag {value['$f']!r}"
                ) from None
        if "$d" in value:
            return _dt.date.fromisoformat(value["$d"])
        raise ServiceError(f"unknown tagged value {sorted(value)!r}")
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def encode_rows(rows: Sequence[tuple]) -> List[List[Any]]:
    return [[encode_value(v) for v in row] for row in rows]


def decode_rows(data: Sequence[Sequence[Any]]) -> List[tuple]:
    return [tuple(decode_value(v) for v in row) for row in data]


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
def encode_result(
    result: Union[QueryResult, StatementResult, None]
) -> Dict[str, Any]:
    """Tagged wire form of an engine execution result."""
    if isinstance(result, QueryResult):
        return {
            "kind": "rows",
            "columns": list(result.columns),
            "rows": encode_rows(result.rows),
        }
    if isinstance(result, StatementResult):
        return {"kind": "status", "status": result.status}
    if result is None:  # e.g. an empty statement batch
        return {"kind": "status", "status": "OK"}
    raise ServiceError(
        f"cannot serialize result of type {type(result).__name__}"
    )


def decode_result(
    data: Dict[str, Any]
) -> Union[QueryResult, StatementResult]:
    kind = data.get("kind")
    if kind == "rows":
        return QueryResult(list(data["columns"]), decode_rows(data["rows"]))
    if kind == "status":
        return StatementResult(data["status"])
    raise ServiceError(f"unknown result kind {kind!r}")


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------
def error_payload(exc: BaseException) -> Dict[str, str]:
    return {"type": type(exc).__name__, "message": str(exc)}


def raise_error(payload: Dict[str, str]) -> None:
    """Re-raise a wire error as its typed exception.

    Error types are resolved against :mod:`repro.errors` (only
    :class:`~repro.errors.ReproError` subclasses are eligible — the type
    name is attacker-controlled input); anything unknown degrades to a
    :class:`~repro.errors.ServiceError` that still carries the original
    type name.
    """
    from repro import errors as _errors
    from repro.errors import ReproError

    name = str(payload.get("type", "ServiceError"))
    message = str(payload.get("message", ""))
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        raise cls(message)
    raise ServiceError(f"{name}: {message}")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def dumps(message: Dict[str, Any]) -> bytes:
    """One message as a complete wire line (deterministic bytes)."""
    return (
        json.dumps(
            message, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        + "\n"
    ).encode("utf-8")


def loads(line: Union[bytes, str]) -> Dict[str, Any]:
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ServiceError(f"malformed wire message: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceError(
            f"wire message must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# human-readable rendering (shared by the shell and the client CLI)
# ----------------------------------------------------------------------
def render_value(value: Any) -> str:
    """Display form of one result cell.

    NULL renders as ``NULL``, floats in ``%g`` form (``nan``/``inf``
    spelled out as ``NaN``/``Infinity`` so they cannot be mistaken for
    column text), lists in ``{a,b}`` braces like arrays.
    """
    if value is None:
        return "NULL"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return "{" + ",".join(render_value(v) for v in value) + "}"
    return str(value)
