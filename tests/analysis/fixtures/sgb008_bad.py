# sgblint: module=repro.service.fixture_async_bad
"""SGB008 true positives: blocking calls reachable from coroutines."""

import queue
import time


class Handler:
    def __init__(self):
        self._queue = queue.Queue()

    def _drain(self):
        # Blocking leaf two edges from the coroutine below.
        return self._queue.get(timeout=1.0)

    async def poll(self):
        return self._drain()  # async -> _drain -> queue.Queue.get


async def pause():
    time.sleep(0.1)  # direct blocking call on the event loop thread
