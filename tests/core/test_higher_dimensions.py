"""Higher-dimensional SGB (the paper's "future work" — 3-D and beyond).

The rectangle machinery is dimension-generic; L∞ stays exact in any
dimension, and L2 falls back to member scans after the rectangle filter
(the convex-hull refinement is 2-D only).  These tests pin that behaviour.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import sgb_all, sgb_any
from tests.conftest import connected_components, is_clique

coord = st.floats(0, 6, allow_nan=False)
point3 = st.tuples(coord, coord, coord)
point4 = st.tuples(coord, coord, coord, coord)


class TestThreeDimensional:
    def test_sgb_all_basic(self):
        pts = [(0, 0, 0), (1, 1, 1), (0.5, 0.5, 0.5), (9, 9, 9)]
        res = sgb_all(pts, eps=1.5, metric="linf", tiebreak="first")
        assert sorted(res.group_sizes()) == [1, 3]

    def test_sgb_all_l2_diagonal(self):
        # L-inf distance 1, L2 distance sqrt(3) ~ 1.73
        pts = [(0, 0, 0), (1, 1, 1)]
        assert sgb_all(pts, 1.0, "linf").n_groups == 1
        assert sgb_all(pts, 1.0, "l2").n_groups == 2
        assert sgb_all(pts, 1.8, "l2").n_groups == 1

    def test_sgb_any_basic(self):
        pts = [(0, 0, 0), (1, 0, 0), (2, 0, 0), (9, 9, 9)]
        res = sgb_any(pts, eps=1.2, metric="l2")
        assert sorted(res.group_sizes()) == [1, 3]

    @pytest.mark.parametrize("metric", ["l2", "linf"])
    @pytest.mark.parametrize("clause",
                             ["join-any", "eliminate", "form-new-group"])
    @settings(max_examples=25, deadline=None)
    @given(points=st.lists(point3, max_size=25),
           eps=st.floats(0.3, 3, allow_nan=False))
    def test_all_clique_invariant_3d(self, metric, clause, points, eps):
        for strategy in ("all-pairs", "bounds-checking", "index"):
            res = sgb_all(points, eps, metric, clause, strategy,
                          tiebreak="first")
            for members in res.groups().values():
                assert is_clique(points, members, eps, metric)

    @pytest.mark.parametrize("metric", ["l2", "linf"])
    @settings(max_examples=25, deadline=None)
    @given(points=st.lists(point3, max_size=25),
           eps=st.floats(0.3, 3, allow_nan=False))
    def test_any_components_oracle_3d(self, metric, points, eps):
        for strategy in ("all-pairs", "index", "grid"):
            res = sgb_any(points, eps, metric, strategy)
            ours = {frozenset(m) for m in res.groups().values()}
            want = {frozenset(c)
                    for c in connected_components(points, eps, metric)}
            assert ours == want

    @settings(max_examples=20, deadline=None)
    @given(points=st.lists(point3, max_size=20),
           eps=st.floats(0.3, 3, allow_nan=False))
    def test_strategies_agree_3d(self, points, eps):
        reference = sgb_all(points, eps, "l2", "eliminate", "all-pairs",
                            tiebreak="first")
        for strategy in ("bounds-checking", "index"):
            assert sgb_all(points, eps, "l2", "eliminate", strategy,
                           tiebreak="first") == reference


class TestFourDimensional:
    @settings(max_examples=15, deadline=None)
    @given(points=st.lists(point4, max_size=18),
           eps=st.floats(0.5, 3, allow_nan=False))
    def test_clique_and_component_invariants_4d(self, points, eps):
        res = sgb_all(points, eps, "linf", "join-any", "index",
                      tiebreak="first")
        for members in res.groups().values():
            assert is_clique(points, members, eps, "linf")
        res = sgb_any(points, eps, "l2", "index")
        ours = {frozenset(m) for m in res.groups().values()}
        want = {frozenset(c)
                for c in connected_components(points, eps, "l2")}
        assert ours == want


class TestSQLThreeDimensional:
    def test_sgb_over_three_columns(self):
        from repro.engine.database import Database

        db = Database(tiebreak="first")
        db.execute("CREATE TABLE p3 (x float, y float, z float)")
        db.insert("p3", [(0, 0, 0), (1, 1, 1), (0.5, 0.5, 0.5),
                         (9, 9, 9), (9.5, 9, 9)])
        res = db.query(
            "SELECT count(*) FROM p3 GROUP BY x, y, z "
            "DISTANCE-TO-ALL LINF WITHIN 1.5 ON-OVERLAP ELIMINATE"
        )
        assert sorted(r[0] for r in res) == [2, 3]
        # (0,0,0)-(0.5,.5,.5)-(1,1,1) chain under L2 (each hop ~0.87)
        res = db.query(
            "SELECT count(*) FROM p3 GROUP BY x, y, z "
            "DISTANCE-TO-ANY L2 WITHIN 1"
        )
        assert sorted(r[0] for r in res) == [2, 3]
        # a tighter eps breaks the chain but keeps the 0.5-apart pair
        res = db.query(
            "SELECT count(*) FROM p3 GROUP BY x, y, z "
            "DISTANCE-TO-ANY L2 WITHIN 0.6"
        )
        assert sorted(r[0] for r in res) == [1, 1, 1, 2]
