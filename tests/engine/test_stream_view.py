"""INSERT-then-requery through streaming views on the Database."""

import pytest

from repro import Database
from repro.core.api import sgb_any
from repro.engine.shell import Shell
from repro.errors import CatalogError, InvalidParameterError


def make_db():
    db = Database()
    db.execute("CREATE TABLE pts (x float, y float)")
    db.execute("INSERT INTO pts VALUES (0, 0), (0.5, 0), (9, 9)")
    return db


class TestStreamViewLifecycle:
    def test_backfills_existing_rows(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        assert view.n_points == 3
        assert view.snapshot().group_sizes() == [2, 1]

    def test_sql_inserts_update_the_view(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        db.execute("INSERT INTO pts VALUES (8.5, 9.0)")
        assert view.snapshot().group_sizes() == [2, 2]
        db.insert("pts", [(0.2, 0.3)])  # python-level API path
        assert view.snapshot().group_sizes() == [3, 2]

    def test_requery_matches_batch_recompute(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        db.execute("INSERT INTO pts VALUES (1.0, 0.2), (4, 4), (4.3, 4.1)")
        points = [(r[0], r[1]) for r in db.table("pts").rows]
        assert (view.snapshot().partition()
                == sgb_any(points, 1.0).partition())

    def test_null_rows_are_skipped(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        db.execute("INSERT INTO pts VALUES (NULL, 3)")
        assert view.n_points == 3
        assert view.n_skipped == 1

    def test_registry_and_drop(self):
        db = make_db()
        db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        assert db.stream_view_names() == ["g"]
        with pytest.raises(CatalogError):
            db.create_stream_view("g", "pts", ["x"], eps=1.0)
        db.drop_stream_view("g")
        assert db.stream_view_names() == []
        with pytest.raises(CatalogError):
            db.stream_view("g")

    def test_detached_view_stops_following(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        db.drop_stream_view("g")
        db.execute("INSERT INTO pts VALUES (8.5, 9.0)")
        assert view.n_points == 3  # last state kept, no new rows

    def test_drop_table_drops_its_views(self):
        db = make_db()
        db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        db.execute("DROP TABLE pts")
        assert db.stream_view_names() == []

    def test_all_mode_view(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], "all",
                                     eps=1.0, tiebreak="first")
        assert view.snapshot().n_groups == 2

    def test_bad_parameters(self):
        db = make_db()
        with pytest.raises(InvalidParameterError):
            db.create_stream_view("g", "pts", [], eps=1.0)
        with pytest.raises(InvalidParameterError):
            db.create_stream_view("g", "pts", ["x"], "sometimes", eps=1.0)
        with pytest.raises(InvalidParameterError):
            db.create_stream_view("g", "pts", ["x"], eps=0.0)

    def test_group_rows_maps_back_to_table_positions(self):
        db = make_db()
        view = db.create_stream_view("g", "pts", ["x", "y"], eps=1.0)
        rows = view.group_rows()
        assert rows[0] == [0, 1]  # the two clustered rows
        assert rows[1] == [2]


class TestShellStreamCommand:
    def test_create_inspect_drop(self):
        shell = Shell(make_db())
        out = shell.feed("\\stream create g pts x,y any 1.0")
        assert "2 groups" in out
        listing = shell.feed("\\stream")
        assert "g: any over pts(x,y)" in listing
        shell.feed("INSERT INTO pts VALUES (8.5, 9.0);")
        detail = shell.feed("\\stream g")
        assert "4 points" in detail and "2 groups" in detail
        assert "Dropped" in shell.feed("\\stream drop g")
        assert "No stream views" in shell.feed("\\stream")

    def test_errors_are_reported_not_raised(self):
        shell = Shell(make_db())
        assert shell.feed("\\stream nope").startswith("ERROR:")
        assert shell.feed("\\stream create g pts x,y any zero").startswith(
            "ERROR:"
        )
        assert "usage" in shell.feed("\\stream create g pts")
