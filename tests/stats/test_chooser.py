"""Unit tests for the SGB strategy chooser (repro.stats.chooser)."""

from repro.stats.chooser import (
    AUTO,
    SMALL_INPUT,
    choose_parallel,
    choose_strategy,
    resolve_sgb_choice,
)


class TestChooseStrategy:
    def test_small_input_prefers_scan(self):
        strategy, reason, costs = choose_strategy("any", SMALL_INPUT, 4.0, 0.5)
        assert strategy == "all-pairs"
        assert "scan constant" in reason

    def test_sparse_any_prefers_grid(self):
        strategy, _, costs = choose_strategy("any", 5000, 0.1, 0.05)
        assert strategy == "grid"
        assert costs["grid"] < costs["all-pairs"] < costs["index"]

    def test_sparse_all_prefers_bounds_checking(self):
        strategy, _, costs = choose_strategy("all", 5000, 0.1, 0.05)
        assert strategy == "bounds-checking"
        assert costs["bounds-checking"] < costs["all-pairs"]

    def test_dense_all_prefers_bounds_checking(self):
        strategy, _, _ = choose_strategy("all", 5000, 100.0, 1.5)
        assert strategy == "bounds-checking"

    def test_zero_eps_any_never_picks_grid(self):
        # eps=0 degenerates to equality grouping; the grid has no cell size
        strategy, _, costs = choose_strategy("any", 5000, 0.0, 0.0)
        assert strategy != "grid"
        assert "grid" not in costs

    def test_no_density_uses_moderate_default(self):
        strategy, _, _ = choose_strategy("any", 5000, None, 0.5)
        assert strategy in ("all-pairs", "grid", "index", "kdtree")

    def test_batch_strategies_ranked_for_any(self):
        _, _, costs = choose_strategy("any", 5000, 4.0, 0.5)
        for name in ("kdtree", "rtree-bulk", "hilbert-grid"):
            assert name in costs

    def test_mid_density_moderate_n_prefers_kdtree(self):
        # n=800, k~17: the k-d tree's flat leaf-batch dispatch beats the
        # grid's linear-in-k cell scans (bench_planner quick-cell regime).
        strategy, _, costs = choose_strategy("any", 800, 17.0, 1.5)
        assert strategy == "kdtree"
        assert costs["kdtree"] < costs["grid"]

    def test_mid_density_large_n_prefers_grid(self):
        # Same density at n=4000: the tree's O(log n) pure-python build
        # has eaten the advantage; the grid takes over.
        strategy, _, _ = choose_strategy("any", 4000, 24.0, 0.3)
        assert strategy == "grid"

    def test_high_density_prefers_grid_over_kdtree(self):
        # k~84: the ε-expanded leaf windows over-gather quadratically.
        _, _, costs = choose_strategy("any", 4000, 84.0, 1.5)
        assert costs["grid"] < costs["kdtree"]


class TestChooseParallel:
    def test_single_cpu_stays_serial(self):
        assert choose_parallel(100_000, 16, cpu_count=1) == 0

    def test_needs_multiple_partitions(self):
        assert choose_parallel(100_000, 1, cpu_count=8) == 0
        assert choose_parallel(100_000, None, cpu_count=8) == 0

    def test_small_input_stays_serial(self):
        assert choose_parallel(100, 16, cpu_count=8) == 0

    def test_capped_by_cpus_and_partitions(self):
        assert choose_parallel(100_000, 4, cpu_count=8) == 4
        assert choose_parallel(100_000, 64, cpu_count=8) == 8


class TestResolveSGBChoice:
    def test_flag_override_wins(self):
        choice = resolve_sgb_choice("any", "grid", 0.5, 10_000.0, 2.0,
                                    None, None)
        assert choice.strategy == "grid"
        assert choice.source == "flag"

    def test_no_stats_falls_back_to_default(self):
        choice = resolve_sgb_choice("any", AUTO, 0.5, None, None, None, None)
        assert choice.source == "default"
        assert choice.strategy == "index"

    def test_stats_drive_the_choice(self):
        choice = resolve_sgb_choice("all", AUTO, 0.05, 5000.0, 0.1,
                                    None, None)
        assert choice.source == "stats"
        assert choice.strategy == "bounds-checking"
        assert choice.costs  # ranked costs recorded for EXPLAIN / debugging

    def test_configured_parallel_respected(self):
        choice = resolve_sgb_choice("any", AUTO, 0.5, 5000.0, 1.0, 3, 8.0)
        assert choice.parallel == 3
