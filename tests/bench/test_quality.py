"""Grouping-quality metric tests."""

import random

import pytest

from repro.bench.quality import (
    adjusted_rand_index,
    filter_assigned,
    normalized_mutual_information,
    purity,
)
from repro.errors import InvalidParameterError


class TestARI:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 9, 9]) == 1.0

    def test_independent_partitions_near_zero(self):
        rng = random.Random(0)
        a = [rng.randrange(4) for _ in range(2000)]
        b = [rng.randrange(4) for _ in range(2000)]
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 2, 2]
        score = adjusted_rand_index(a, b)
        assert 0 < score < 1

    def test_matches_sklearn_formula_on_known_case(self):
        # the classic textbook example: ARI([0,0,1,2],[0,0,1,1]) = 0.571428…
        assert adjusted_rand_index([0, 0, 1, 2], [0, 0, 1, 1]) == (
            pytest.approx(0.5714285714285714)
        )

    def test_empty(self):
        assert adjusted_rand_index([], []) == 1.0

    def test_misaligned(self):
        with pytest.raises(InvalidParameterError):
            adjusted_rand_index([0], [0, 1])

    def test_single_cluster_vs_singletons(self):
        a = [0, 0, 0, 0]
        b = [0, 1, 2, 3]
        assert adjusted_rand_index(a, b) == pytest.approx(0.0)


class TestNMI:
    def test_identical(self):
        assert normalized_mutual_information([0, 1, 0, 1], [7, 3, 7, 3]) == (
            pytest.approx(1.0)
        )

    def test_independent_near_zero(self):
        rng = random.Random(1)
        a = [rng.randrange(3) for _ in range(3000)]
        b = [rng.randrange(3) for _ in range(3000)]
        assert normalized_mutual_information(a, b) < 0.05

    def test_bounds(self):
        rng = random.Random(2)
        a = [rng.randrange(5) for _ in range(100)]
        b = [rng.randrange(5) for _ in range(100)]
        assert 0.0 <= normalized_mutual_information(a, b) <= 1.0

    def test_both_trivial(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0

    def test_empty(self):
        assert normalized_mutual_information([], []) == 1.0


class TestPurity:
    def test_pure_clusters(self):
        assert purity([0, 0, 1, 1], [5, 5, 6, 6]) == 1.0

    def test_mixed_cluster(self):
        assert purity([0, 0, 0, 0], [1, 1, 2, 2]) == 0.5

    def test_singletons_always_pure(self):
        assert purity([0, 1, 2], [9, 9, 9]) == 1.0

    def test_empty(self):
        assert purity([], []) == 1.0


class TestFilterAssigned:
    def test_drops_negative_positions(self):
        a, b = filter_assigned([0, -1, 2, 3], [0, 1, -1, 3])
        assert a == [0, 3] and b == [0, 3]

    def test_misaligned(self):
        with pytest.raises(InvalidParameterError):
            filter_assigned([0], [])


class TestCrossMethodSanity:
    def test_sgb_any_vs_dbscan_agree_on_well_separated_blobs(self):
        """On cleanly separated blobs, SGB-Any components and DBSCAN
        clusters should be (nearly) the same partition."""
        rng = random.Random(3)
        blobs = []
        truth = []
        for b, center in enumerate([(0, 0), (10, 0), (0, 10)]):
            for _ in range(40):
                blobs.append(
                    (rng.gauss(center[0], 0.3), rng.gauss(center[1], 0.3))
                )
                truth.append(b)
        from repro.clustering import dbscan
        from repro.core.api import sgb_any

        sgb_labels = sgb_any(blobs, eps=1.5, metric="l2").labels
        db_labels = dbscan(blobs, eps=1.5, min_pts=3).labels
        a, b = filter_assigned(sgb_labels, db_labels)
        assert adjusted_rand_index(a, b) > 0.99
        assert purity(sgb_labels, truth) > 0.99
