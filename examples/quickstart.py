"""Quickstart: the SGB operators on the paper's own worked examples.

Runs the array-level API on the point sets of Figures 1 and 2, then the
same groupings through the SQL engine — demonstrating both entry points of
the library.

    python examples/quickstart.py
"""

from repro import Database, sgb_all, sgb_any


def figure1() -> None:
    """Figure 1: the two semantics on the same neighbourhood threshold."""
    # (a) DISTANCE-TO-ALL: points a-e form a clique within L-inf 3;
    #     c also cliques with f, g.
    points_a = {
        "a": (1, 5), "b": (2, 4), "c": (3, 3), "d": (2, 2), "e": (3, 5),
        "f": (5, 2), "g": (6, 1),
    }
    res = sgb_all(points_a.values(), eps=3, metric="linf",
                  on_overlap="join-any", tiebreak="first")
    names = list(points_a)
    print("Figure 1a (SGB-All, L-inf, eps=3):")
    for gid, members in sorted(res.groups().items()):
        print(f"  group {gid}: {[names[i] for i in members]}")

    # (b) DISTANCE-TO-ANY: a chain of neighbourhoods merges everything.
    points_b = [(1, 5), (2, 4), (3, 3), (2, 2), (3, 5), (5, 2), (6, 1),
                (6, 4)]
    res = sgb_any(points_b, eps=3, metric="linf")
    print(f"Figure 1b (SGB-Any, L-inf, eps=3): {res.n_groups} group(s) "
          f"of sizes {res.group_sizes()}")


def figure2_example1() -> None:
    """Example 1: the ON-OVERLAP clauses on the a1..a5 stream."""
    # a1, a2 and a3, a4 form two separate pairs; a5 arrives last and is
    # within eps of all four (Figure 2's configuration).
    stream = [(1, 6), (2, 7), (6, 4), (7, 5), (4, 5.5)]  # a1..a5
    for clause, expected in [("join-any", "{3, 2}"),
                             ("eliminate", "{2, 2}"),
                             ("form-new-group", "{2, 2, 1}")]:
        res = sgb_all(stream, eps=3, metric="linf", on_overlap=clause,
                      tiebreak="first")
        counts = sorted((len(m) for m in res.groups().values()),
                        reverse=True)
        print(f"Example 1 ON-OVERLAP {clause:15s} -> counts {counts} "
              f"(paper: {expected})")


def example2_sql() -> None:
    """Example 2 as SQL: SGB-Any merges the overlapping groups."""
    db = Database(tiebreak="first")
    db.execute("CREATE TABLE gpspoints (gpscoor_lat float, gpscoor_long float)")
    db.execute(
        "INSERT INTO gpspoints VALUES "
        "(1, 6), (2, 7), (6, 4), (7, 5), (4, 5.5)"
    )
    result = db.execute(
        "SELECT count(*) FROM gpspoints "
        "GROUP BY gpscoor_lat, gpscoor_long "
        "DISTANCE-TO-ANY L2 WITHIN 3"
    )
    print(f"Example 2 (SQL, SGB-Any L2 eps=3): counts "
          f"{[row[0] for row in result]} (paper: {{5}})")


def main() -> None:
    figure1()
    print()
    figure2_example1()
    print()
    example2_sql()


if __name__ == "__main__":
    main()
