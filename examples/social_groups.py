"""Location-based private group recommendation — paper Section 5, Example 4.

Users' frequent locations (from the synthetic check-in generator) are
grouped with SGB-All under each ON-OVERLAP semantics.  The paper's privacy
argument: a user near several groups must not join them all, so

* JOIN-ANY        recommends exactly one group per user,
* ELIMINATE       drops boundary users from recommendation entirely,
* FORM-NEW-GROUP  gives boundary users dedicated groups.

    python examples/social_groups.py [n_users] [threshold]
"""

import sys
from collections import Counter

from repro import Database
from repro.workloads.checkins import CheckinDataset
from repro.workloads.queries import private_groups


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    threshold = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    # Each user's "frequent location": their first synthetic check-in.
    data = CheckinDataset(n_checkins=n_users * 3, n_users=n_users,
                          n_cities=8, city_std=0.7, seed=21)
    frequent = {}
    for user_id, lat, lon in data.rows:
        frequent.setdefault(user_id, (lat, lon))

    db = Database(tiebreak="first")
    db.execute(
        "CREATE TABLE users_frequent_location "
        "(user_id int, user_lat float, user_long float)"
    )
    db.insert(
        "users_frequent_location",
        [(uid, lat, lon) for uid, (lat, lon) in frequent.items()],
    )

    total_users = len(frequent)
    print(f"{total_users} users, similarity threshold {threshold}:\n")
    for clause in ("join-any", "eliminate", "form-new-group"):
        result = db.execute(private_groups(threshold, on_overlap=clause))
        members_per_group = [len(row[0]) for row in result]
        placed = sum(members_per_group)
        sizes = Counter(members_per_group)
        print(f"ON-OVERLAP {clause.upper()}:")
        print(f"  {len(result)} group(s); {placed}/{total_users} users placed"
              f" ({total_users - placed} excluded for privacy)")
        print(f"  group-size histogram: "
              f"{dict(sorted(sizes.items(), reverse=True))}")
        # every group also carries its enclosing polygon
        biggest = max(result.rows, key=lambda r: len(r[0]))
        print(f"  largest group spans area {biggest[1].area():.3f}\n")


if __name__ == "__main__":
    main()
