"""Table statistics and the cost-based planner support (ANALYZE).

Three layers, lowest first:

:mod:`repro.stats.collect`
    The ANALYZE pass — per-table/column row counts, ndv, min/max, and
    small equi-width density histograms over numeric columns.
:mod:`repro.stats.model`
    The PostgreSQL-style cost arithmetic (:class:`PlanEstimate`,
    startup/total costs, default selectivities, SGB strategy cost
    formulas).
:mod:`repro.stats.estimator` / :mod:`repro.stats.chooser`
    The plan walker that attaches a :class:`PlanEstimate` to every
    physical operator, and the chooser that turns those estimates into
    execution decisions (SGB strategy, parallel degree) unless a user
    flag overrides them.
"""

from repro.stats.chooser import (
    AUTO,
    SGBChoice,
    choose_parallel,
    choose_strategy,
    resolve_sgb_choice,
)
from repro.stats.collect import (
    ColumnStats,
    DensityHistogram,
    TableStats,
    analyze_table,
)
from repro.stats.estimator import (
    column_stats_for,
    estimate_plan,
    predicate_selectivity,
    sgb_density,
    table_stats_for,
)
from repro.stats.model import PlanEstimate

__all__ = [
    "AUTO",
    "ColumnStats",
    "DensityHistogram",
    "PlanEstimate",
    "SGBChoice",
    "TableStats",
    "analyze_table",
    "choose_parallel",
    "choose_strategy",
    "column_stats_for",
    "estimate_plan",
    "predicate_selectivity",
    "resolve_sgb_choice",
    "sgb_density",
    "table_stats_for",
]
