"""Clustering baselines the paper compares SGB against (Figure 11)."""

from repro.clustering.birch import BirchResult, CFTree, birch
from repro.clustering.dbscan import NOISE, DBSCANResult, dbscan
from repro.clustering.kmeans import KMeansResult, kmeans

__all__ = [
    "kmeans",
    "KMeansResult",
    "dbscan",
    "DBSCANResult",
    "NOISE",
    "birch",
    "BirchResult",
    "CFTree",
]
